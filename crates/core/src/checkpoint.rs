//! Checkpoint/resume for long-running sweeps.
//!
//! The paper's evaluation ground per-destination routing trees for a
//! 36K-AS graph on a 200-node cluster; at that scale a mid-sweep crash
//! must not discard hours of finished work. A [`SweepCheckpoint`]
//! records every completed sweep unit (one `(adopter set, θ)` cell, one
//! census round, …) keyed by a caller-chosen string, and persists
//! itself with an **atomic write-rename** so a kill at any instant
//! leaves either the previous complete checkpoint or the new one —
//! never a torn file.
//!
//! # Bit-exact by construction
//!
//! Resume must be indistinguishable from an uninterrupted run (the
//! guarantee `tests/determinism.rs` pins down), so the codec
//! round-trips [`SimResult`]s exactly: every `f64` is stored as the
//! hex of its IEEE-754 bits, never through decimal formatting. The
//! format is a self-contained line-oriented text encoding
//! ([`codec`]) — persistence does not depend on any serialization
//! crate.
//!
//! A checkpoint also stores a fingerprint of the sweep parameters
//! (graph size, seed, thread-irrelevant knobs — whatever the caller
//! hashes via [`params_fingerprint`]); [`SweepCheckpoint::load`]
//! refuses to resume against a checkpoint written under different
//! parameters instead of silently mixing incompatible results.

use crate::sim::SimResult;
use crate::storage::{StorageError, Store};
use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// A [`Store`] + key pair addressing one artifact file at `path` — the
/// bridge that keeps the historical path-based API alive on top of the
/// storage trait: a [`LocalDisk`](crate::storage::LocalDisk) rooted at
/// the file's parent directory with the file name as the key, which
/// writes byte-for-byte what the pre-trait code wrote.
pub fn file_store(path: &Path) -> Result<(Store, String), CheckpointError> {
    let parent = match path.parent() {
        Some(d) if !d.as_os_str().is_empty() => d.to_path_buf(),
        _ => PathBuf::from("."),
    };
    let name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| CheckpointError::Io {
            path: path.to_path_buf(),
            message: "path has no usable file name".into(),
        })?
        .to_string();
    Ok((Store::localdisk(parent), name))
}

/// Map a storage failure onto the checkpoint error vocabulary, naming
/// the artifact by its human-facing path.
fn store_io(display: &Path, e: StorageError) -> CheckpointError {
    CheckpointError::Io {
        path: display.to_path_buf(),
        message: e.to_string(),
    }
}

/// Errors from checkpoint persistence.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure reading or writing the checkpoint.
    Io {
        /// The file involved.
        path: PathBuf,
        /// The underlying error, stringified.
        message: String,
    },
    /// The file exists but does not parse as a checkpoint.
    Corrupt {
        /// The file involved.
        path: PathBuf,
        /// 1-based line of the first offending record.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// The checkpoint was written by a run with different parameters
    /// and cannot be resumed against this one.
    ParamsMismatch {
        /// The file involved.
        path: PathBuf,
        /// Fingerprint of the current run's parameters.
        expected: u64,
        /// Fingerprint stored in the file.
        found: u64,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io { path, message } => {
                write!(f, "checkpoint i/o error on {}: {message}", path.display())
            }
            CheckpointError::Corrupt {
                path,
                line,
                message,
            } => write!(
                f,
                "corrupt checkpoint {} at line {line}: {message}",
                path.display()
            ),
            CheckpointError::ParamsMismatch {
                path,
                expected,
                found,
            } => write!(
                f,
                "checkpoint {} was written with different sweep parameters \
                 (fingerprint {found:016x}, this run is {expected:016x}); \
                 delete it to start the sweep over",
                path.display()
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Format header of the current checkpoint version. v2 added the task
/// fault kind to quarantine records plus the self-check and deadline
/// ledgers; older files are refused rather than half-read.
const HEADER: &str = "sbgp-checkpoint v2";

/// FNV-1a fingerprint of the parameter strings that define a sweep.
/// Order matters; include everything that changes the results (graph
/// size, seed, θ grid, model…) and nothing that doesn't (thread count).
pub fn params_fingerprint<S: AsRef<str>>(parts: &[S]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for part in parts {
        for b in part.as_ref().bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        // Separator so ["ab", "c"] != ["a", "bc"].
        h ^= 0x1f;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Progress of one sweep: every completed unit's result, keyed by a
/// caller-chosen unit label (e.g. `"adopters=CP+5;theta=0.10"`).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCheckpoint {
    /// Fingerprint of the sweep parameters this progress belongs to.
    pub fingerprint: u64,
    units: Vec<(String, SimResult)>,
    index: HashMap<String, usize>,
}

impl SweepCheckpoint {
    /// Empty progress for a sweep with the given parameter fingerprint.
    pub fn new(fingerprint: u64) -> Self {
        SweepCheckpoint {
            fingerprint,
            units: Vec::new(),
            index: HashMap::new(),
        }
    }

    /// Number of completed units.
    pub fn len(&self) -> usize {
        self.units.len()
    }

    /// Whether no unit has completed yet.
    pub fn is_empty(&self) -> bool {
        self.units.is_empty()
    }

    /// The recorded result for `key`, if that unit already completed.
    pub fn get(&self, key: &str) -> Option<&SimResult> {
        self.index.get(key).map(|&i| &self.units[i].1)
    }

    /// Record a completed unit (overwrites a previous entry with the
    /// same key).
    pub fn insert(&mut self, key: impl Into<String>, result: SimResult) {
        let key = key.into();
        match self.index.get(&key) {
            Some(&i) => self.units[i].1 = result,
            None => {
                self.index.insert(key.clone(), self.units.len());
                self.units.push((key, result));
            }
        }
    }

    /// Completed units in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &SimResult)> {
        self.units.iter().map(|(k, r)| (k.as_str(), r))
    }

    /// Persist atomically: encode to `<path>.tmp`, then rename over
    /// `path`. A crash mid-save leaves the previous checkpoint intact.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        let (store, key) = file_store(path)?;
        self.save_impl(&store, &key, path)
    }

    /// Persist atomically under `key` in `store` — the backend-generic
    /// form of [`Self::save`], with the same atomic-replace guarantee
    /// ([`crate::storage::StorageBackend::put_atomic`]'s contract).
    pub fn save_to(&self, store: &Store, key: &str) -> Result<(), CheckpointError> {
        self.save_impl(store, key, Path::new(key))
    }

    fn save_impl(&self, store: &Store, key: &str, display: &Path) -> Result<(), CheckpointError> {
        let mut text = String::new();
        text.push_str(HEADER);
        text.push('\n');
        text.push_str(&format!("fingerprint {:016x}\n", self.fingerprint));
        text.push_str(&format!("units {}\n", self.units.len()));
        for (key, result) in &self.units {
            text.push_str(&format!("unit {}\n", codec::hex_str(key)));
            codec::encode_result(&mut text, result);
        }
        text.push_str("end\n");

        // Encode/decode round-trip guard: never persist bytes the
        // decoder would not reproduce bit-for-bit (a codec bug caught
        // at save time costs one re-run; caught at resume time it costs
        // the whole checkpoint).
        let reread = Self::parse(&text, display, Some(self.fingerprint))?;
        if reread != *self {
            return Err(CheckpointError::Corrupt {
                path: display.to_path_buf(),
                line: 0,
                message: "encode/decode round-trip mismatch (codec bug); refusing to save".into(),
            });
        }

        store
            .put_atomic(key, text.as_bytes())
            .map_err(|e| store_io(display, e))
    }

    /// Parse checkpoint text. With `expected_fingerprint = Some(f)`,
    /// refuses a file whose stored fingerprint differs; with `None`,
    /// accepts any fingerprint (the `doctor` inspection path).
    fn parse(
        text: &str,
        path: &Path,
        expected_fingerprint: Option<u64>,
    ) -> Result<Self, CheckpointError> {
        let corrupt = |line: usize, message: String| CheckpointError::Corrupt {
            path: path.to_path_buf(),
            line,
            message,
        };
        let mut p = codec::Parser::new(text);
        p.expect_line(HEADER)
            .map_err(|e| corrupt(e.line, e.message))?;
        let fingerprint = p
            .tagged_u64_hex("fingerprint")
            .map_err(|e| corrupt(e.line, e.message))?;
        if let Some(expected) = expected_fingerprint {
            if fingerprint != expected {
                return Err(CheckpointError::ParamsMismatch {
                    path: path.to_path_buf(),
                    expected,
                    found: fingerprint,
                });
            }
        }
        let count = p
            .tagged_usize("units")
            .map_err(|e| corrupt(e.line, e.message))?;
        let mut ckpt = SweepCheckpoint::new(fingerprint);
        for _ in 0..count {
            let key = p
                .tagged_hex_str("unit")
                .map_err(|e| corrupt(e.line, e.message))?;
            let result = codec::decode_result(&mut p).map_err(|e| corrupt(e.line, e.message))?;
            ckpt.insert(key, result);
        }
        p.expect_line("end")
            .map_err(|e| corrupt(e.line, e.message))?;
        Ok(ckpt)
    }

    /// Read and decode the checkpoint at `key`, or `None` if it does
    /// not exist.
    fn read_impl(
        store: &Store,
        key: &str,
        display: &Path,
        expected_fingerprint: Option<u64>,
    ) -> Result<Option<Self>, CheckpointError> {
        let Some(bytes) = store.get(key).map_err(|e| store_io(display, e))? else {
            return Ok(None);
        };
        let text = String::from_utf8(bytes).map_err(|e| CheckpointError::Corrupt {
            path: display.to_path_buf(),
            line: 0,
            message: format!("checkpoint is not UTF-8: {e}"),
        })?;
        Self::parse(&text, display, expected_fingerprint).map(Some)
    }

    fn missing(display: &Path) -> CheckpointError {
        CheckpointError::Io {
            path: display.to_path_buf(),
            message: "no such checkpoint".into(),
        }
    }

    /// Load a checkpoint, verifying it belongs to a sweep whose
    /// parameters hash to `expected_fingerprint`.
    pub fn load(path: &Path, expected_fingerprint: u64) -> Result<Self, CheckpointError> {
        let (store, key) = file_store(path)?;
        Self::read_impl(&store, &key, path, Some(expected_fingerprint))?
            .ok_or_else(|| Self::missing(path))
    }

    /// Backend-generic [`Self::load`].
    pub fn load_from(
        store: &Store,
        key: &str,
        expected_fingerprint: u64,
    ) -> Result<Self, CheckpointError> {
        Self::read_impl(store, key, Path::new(key), Some(expected_fingerprint))?
            .ok_or_else(|| Self::missing(Path::new(key)))
    }

    /// Validate and load a checkpoint file without knowing the sweep
    /// parameters it was written under (fingerprint is reported, not
    /// checked) — the `repro doctor` inspection path.
    pub fn inspect(path: &Path) -> Result<Self, CheckpointError> {
        let (store, key) = file_store(path)?;
        Self::read_impl(&store, &key, path, None)?.ok_or_else(|| Self::missing(path))
    }

    /// Backend-generic [`Self::inspect`] — `doctor` validates any
    /// backend's checkpoints through this one entry point.
    pub fn inspect_from(store: &Store, key: &str) -> Result<Self, CheckpointError> {
        Self::read_impl(store, key, Path::new(key), None)?
            .ok_or_else(|| Self::missing(Path::new(key)))
    }

    /// Resume if `path` exists, start fresh otherwise. Corrupt files
    /// and parameter mismatches are errors, not silent restarts.
    pub fn load_or_new(path: &Path, fingerprint: u64) -> Result<Self, CheckpointError> {
        let (store, key) = file_store(path)?;
        Self::load_or_new_from(&store, &key, fingerprint)
    }

    /// Backend-generic [`Self::load_or_new`].
    pub fn load_or_new_from(
        store: &Store,
        key: &str,
        fingerprint: u64,
    ) -> Result<Self, CheckpointError> {
        Ok(
            Self::read_impl(store, key, Path::new(key), Some(fingerprint))?
                .unwrap_or_else(|| Self::new(fingerprint)),
        )
    }
}

/// What a journal replay recovered, and what (if anything) was torn.
///
/// A journal written by a process that was `SIGKILL`ed (or lost power)
/// mid-append ends in a partial record. Replay never fails on that: it
/// keeps every record whose checksum verifies and reports the torn
/// suffix here so callers can warn, and `salvage` can truncate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SalvageReport {
    /// Complete, checksum-verified unit records recovered.
    pub records: usize,
    /// Byte offset one past the last valid record — the length the
    /// file should be truncated to.
    pub valid_bytes: u64,
    /// Bytes of torn/partial trailing data past `valid_bytes`
    /// (`0` means the journal is clean).
    pub torn_bytes: u64,
}

impl SalvageReport {
    /// Whether the journal ended cleanly at a record boundary.
    pub fn is_clean(&self) -> bool {
        self.torn_bytes == 0
    }
}

/// An append-only, per-unit write-ahead journal beside a checkpoint.
///
/// The checkpoint's atomic write-rename makes *saves* crash-safe, but a
/// save only happens every `--checkpoint-every` units; everything since
/// the last save dies with the process. The journal closes that window:
/// each completed unit is appended (and fsynced) as one self-delimiting
/// record
///
/// ```text
/// rec <payload-bytes> <fnv64-hex>\n
/// <payload>\n
/// ```
///
/// where the payload is `unit <hex key>\n` + the bit-exact
/// [`codec::encode_result`] text, and the checksum is FNV-1a over the
/// payload bytes. A crash mid-append leaves a torn tail that replay
/// detects (length or checksum mismatch) and salvages by truncating to
/// the last valid record — never by refusing the whole file. After a
/// successful checkpoint save the journal is truncated (compaction):
/// its records are now covered by the checkpoint.
///
/// Distributed sweeps add a second record type with the same framing:
/// a **lease**, payload `lease <hex key>\npeer <hex peer>\n`, appended
/// when a unit is dispatched to a worker. A unit record for the same
/// key discharges the lease; a lease with no later unit record marks
/// work that was in flight when the coordinator died — the resumed run
/// simply re-dispatches it (the unit was never merged), and `doctor`
/// can report which peer held it.
#[derive(Debug)]
pub struct UnitJournal {
    store: Store,
    key: String,
    display: PathBuf,
}

/// One replayed journal record: a completed unit, or a lease marking a
/// unit dispatched to a worker and not yet (at append time) completed.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalRecord {
    /// A completed unit with its bit-exact result (boxed: a result is
    /// orders of magnitude larger than a lease).
    Unit {
        /// The unit key.
        key: String,
        /// The deterministic result.
        result: Box<SimResult>,
    },
    /// A unit was dispatched to `peer` — in flight at append time.
    Lease {
        /// The unit key.
        key: String,
        /// Which worker held the lease (a peer address or process id).
        peer: String,
    },
}

/// FNV-1a over raw bytes (same constants as [`params_fingerprint`]).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

impl UnitJournal {
    /// Open (or create) the journal at `path` for appending.
    pub fn open(path: &Path) -> Result<Self, CheckpointError> {
        let (store, key) = file_store(path)?;
        Self::open_impl(store, key, path.to_path_buf())
    }

    /// Open (or create) the journal at `key` in `store` — the
    /// backend-generic form of [`Self::open`].
    pub fn open_in(store: &Store, key: &str) -> Result<Self, CheckpointError> {
        Self::open_impl(store.clone(), key.to_string(), PathBuf::from(key))
    }

    fn open_impl(store: Store, key: String, display: PathBuf) -> Result<Self, CheckpointError> {
        // Match the historical open(create | append) semantics: the
        // journal exists (empty) after open, existing records survive.
        if store
            .len(&key)
            .map_err(|e| store_io(&display, e))?
            .is_none()
        {
            store
                .append_durable(&key, b"")
                .map_err(|e| store_io(&display, e))?;
        }
        Ok(UnitJournal {
            store,
            key,
            display,
        })
    }

    /// The journal's human-facing path (the storage key, for non-disk
    /// backends).
    pub fn path(&self) -> &Path {
        &self.display
    }

    /// The journal's storage key, for store-level operations (e.g.
    /// deleting a compacted journal through the same backend).
    pub fn key(&self) -> &str {
        &self.key
    }

    /// Append one completed unit and fsync, so the record survives any
    /// crash that happens after this returns.
    pub fn append(&mut self, key: &str, result: &SimResult) -> Result<(), CheckpointError> {
        let mut payload = String::new();
        payload.push_str(&format!("unit {}\n", codec::hex_str(key)));
        codec::encode_result(&mut payload, result);
        self.append_payload(&payload)
    }

    /// Append a lease record — `key` was just dispatched to `peer` —
    /// and fsync. Written *before* the assignment leaves the
    /// coordinator, so a resumed run can tell which units were in
    /// flight (and with whom) at the moment of death.
    pub fn append_lease(&mut self, key: &str, peer: &str) -> Result<(), CheckpointError> {
        let payload = format!(
            "lease {}\npeer {}\n",
            codec::hex_str(key),
            codec::hex_str(peer)
        );
        self.append_payload(&payload)
    }

    fn append_payload(&mut self, payload: &str) -> Result<(), CheckpointError> {
        let mut rec = format!("rec {} {:016x}\n", payload.len(), fnv1a(payload.as_bytes()));
        rec.push_str(payload);
        rec.push('\n');
        // Store::append_durable is record-safe under retry: a torn
        // first attempt is truncated back before the retry, so the
        // journal never ends up with a half-record *followed by* its
        // complete twin.
        self.store
            .append_durable(&self.key, rec.as_bytes())
            .map_err(|e| store_io(&self.display, e))
    }

    /// Drop every record (after its units were compacted into a saved
    /// checkpoint) and fsync the now-empty file.
    pub fn reset(&mut self) -> Result<(), CheckpointError> {
        self.store
            .truncate(&self.key, 0)
            .map_err(|e| store_io(&self.display, e))
    }

    /// Replay a journal file's *unit* records in write order (lease
    /// records are skipped — they mark dispatch, not completion), plus
    /// a [`SalvageReport`] describing any torn tail. A missing file
    /// replays as empty. The only errors are real I/O failures and
    /// records whose checksum verifies but whose payload does not
    /// decode (a writer bug, not a torn write).
    pub fn replay(
        path: &Path,
    ) -> Result<(Vec<(String, SimResult)>, SalvageReport), CheckpointError> {
        let (store, key) = file_store(path)?;
        Self::replay_in(&store, &key)
    }

    /// Backend-generic [`Self::replay`].
    pub fn replay_in(
        store: &Store,
        key: &str,
    ) -> Result<(Vec<(String, SimResult)>, SalvageReport), CheckpointError> {
        let (records, report) = Self::replay_records_in(store, key)?;
        let units = records
            .into_iter()
            .filter_map(|r| match r {
                JournalRecord::Unit { key, result } => Some((key, *result)),
                JournalRecord::Lease { .. } => None,
            })
            .collect();
        Ok((units, report))
    }

    /// Replay every checksum-verified record — units *and* leases — in
    /// write order. The lease view is what a resumed coordinator and
    /// `doctor` use: a lease with no later unit record for the same key
    /// was in flight when the writer died.
    pub fn replay_records(
        path: &Path,
    ) -> Result<(Vec<JournalRecord>, SalvageReport), CheckpointError> {
        let (store, key) = file_store(path)?;
        Self::replay_records_in(&store, &key)
    }

    /// Backend-generic [`Self::replay_records`].
    pub fn replay_records_in(
        store: &Store,
        key: &str,
    ) -> Result<(Vec<JournalRecord>, SalvageReport), CheckpointError> {
        let display = Path::new(key);
        let bytes = match store.get(key).map_err(|e| store_io(display, e))? {
            Some(b) => b,
            None => {
                return Ok((
                    Vec::new(),
                    SalvageReport {
                        records: 0,
                        valid_bytes: 0,
                        torn_bytes: 0,
                    },
                ))
            }
        };
        let mut records: Vec<JournalRecord> = Vec::new();
        let mut offset = 0usize;
        while let Some((payload, end)) = next_record(&bytes, offset) {
            records.push(decode_record(payload, display, records.len() + 1)?);
            offset = end;
        }
        let report = SalvageReport {
            records: records.len(),
            valid_bytes: offset as u64,
            torn_bytes: (bytes.len() - offset) as u64,
        };
        Ok((records, report))
    }

    /// The keys whose most recent journal mention is a lease — i.e.
    /// dispatched but never completed — with the peer that held each.
    /// Order is first-lease order; a unit record discharges every
    /// earlier lease on its key.
    pub fn outstanding_leases(records: &[JournalRecord]) -> Vec<(String, String)> {
        let mut open: Vec<(String, String)> = Vec::new();
        for rec in records {
            match rec {
                JournalRecord::Lease { key, peer } => {
                    if let Some(slot) = open.iter_mut().find(|(k, _)| k == key) {
                        slot.1 = peer.clone();
                    } else {
                        open.push((key.clone(), peer.clone()));
                    }
                }
                JournalRecord::Unit { key, .. } => {
                    open.retain(|(k, _)| k != key);
                }
            }
        }
        open
    }

    /// Truncate the file at `path` to its last valid record, making a
    /// torn journal clean. Returns what was salvaged.
    pub fn salvage(path: &Path) -> Result<SalvageReport, CheckpointError> {
        let (store, key) = file_store(path)?;
        Self::salvage_in(&store, &key)
    }

    /// Backend-generic [`Self::salvage`].
    pub fn salvage_in(store: &Store, key: &str) -> Result<SalvageReport, CheckpointError> {
        let (_, report) = Self::replay_in(store, key)?;
        if report.torn_bytes > 0 {
            store
                .truncate(key, report.valid_bytes)
                .map_err(|e| store_io(Path::new(key), e))?;
        }
        Ok(report)
    }
}

/// Scan one record starting at `offset`. Returns the payload slice and
/// the offset one past the record, or `None` if the bytes from `offset`
/// on do not form a complete valid record (torn tail — or end of file).
fn next_record(bytes: &[u8], offset: usize) -> Option<(&[u8], usize)> {
    let rest = &bytes[offset..];
    let nl = rest.iter().position(|&b| b == b'\n')?;
    let header = std::str::from_utf8(&rest[..nl]).ok()?;
    let mut toks = header.split_whitespace();
    if toks.next() != Some("rec") {
        return None;
    }
    let len: usize = toks.next()?.parse().ok()?;
    let sum_tok = toks.next()?;
    if toks.next().is_some() || sum_tok.len() != 16 {
        return None;
    }
    let sum = u64::from_str_radix(sum_tok, 16).ok()?;
    let body_start = nl + 1;
    // Payload plus its trailing newline must be fully present.
    if rest.len() < body_start + len + 1 {
        return None;
    }
    let payload = &rest[body_start..body_start + len];
    if rest[body_start + len] != b'\n' || fnv1a(payload) != sum {
        return None;
    }
    Some((payload, offset + body_start + len + 1))
}

/// Decode one record's payload into a [`JournalRecord`]. `record` is
/// the 1-based record number, for error messages.
fn decode_record(
    payload: &[u8],
    path: &Path,
    record: usize,
) -> Result<JournalRecord, CheckpointError> {
    let corrupt = |line: usize, message: String| CheckpointError::Corrupt {
        path: path.to_path_buf(),
        line,
        message: format!("journal record {record}: {message}"),
    };
    let text = std::str::from_utf8(payload)
        .map_err(|e| corrupt(0, format!("payload is not UTF-8: {e}")))?;
    let tag = text
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().next())
        .unwrap_or("");
    let mut p = codec::Parser::new(text);
    match tag {
        "lease" => {
            let key = p
                .tagged_hex_str("lease")
                .map_err(|e| corrupt(e.line, e.message))?;
            let peer = p
                .tagged_hex_str("peer")
                .map_err(|e| corrupt(e.line, e.message))?;
            Ok(JournalRecord::Lease { key, peer })
        }
        _ => {
            let key = p
                .tagged_hex_str("unit")
                .map_err(|e| corrupt(e.line, e.message))?;
            let result = codec::decode_result(&mut p).map_err(|e| corrupt(e.line, e.message))?;
            Ok(JournalRecord::Unit {
                key,
                result: Box::new(result),
            })
        }
    }
}

/// The self-contained, bit-exact text codec behind [`SweepCheckpoint`].
///
/// Line-oriented: every record is `tag value…`; every `f64` travels as
/// the 16-hex-digit IEEE-754 bit pattern, every string as hex-encoded
/// UTF-8, so decode(encode(x)) == x exactly.
pub mod codec {
    use crate::engine::{QuarantinedTask, SelfCheckViolation, TaskFault};
    use crate::sim::{Outcome, RoundRecord, SimResult};
    use sbgp_asgraph::AsId;
    use sbgp_routing::SecureSet;
    use std::fmt::Write as _;

    /// A decode failure: 1-based line and description.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct DecodeError {
        /// 1-based line number in the encoded text.
        pub line: usize,
        /// What was wrong.
        pub message: String,
    }

    /// Hex-encode a string's UTF-8 bytes (empty string → `-`).
    pub fn hex_str(s: &str) -> String {
        if s.is_empty() {
            return "-".to_string();
        }
        let mut out = String::with_capacity(s.len() * 2);
        for b in s.bytes() {
            let _ = write!(out, "{b:02x}");
        }
        out
    }

    fn unhex_str(tok: &str) -> Option<String> {
        if tok == "-" {
            return Some(String::new());
        }
        if !tok.len().is_multiple_of(2) {
            return None;
        }
        let mut bytes = Vec::with_capacity(tok.len() / 2);
        for i in (0..tok.len()).step_by(2) {
            bytes.push(u8::from_str_radix(tok.get(i..i + 2)?, 16).ok()?);
        }
        String::from_utf8(bytes).ok()
    }

    fn push_f64s(out: &mut String, tag: &str, xs: &[f64]) {
        let _ = write!(out, "{tag} {}", xs.len());
        for x in xs {
            let _ = write!(out, " {:016x}", x.to_bits());
        }
        out.push('\n');
    }

    fn push_ids(out: &mut String, tag: &str, ids: &[AsId]) {
        let _ = write!(out, "{tag} {}", ids.len());
        for id in ids {
            let _ = write!(out, " {}", id.0);
        }
        out.push('\n');
    }

    fn push_state(out: &mut String, tag: &str, s: &SecureSet) {
        let _ = write!(out, "{tag} {}", s.capacity());
        for id in s.iter() {
            let _ = write!(out, " {}", id.0);
        }
        out.push('\n');
    }

    /// Append the encoding of one [`SimResult`].
    pub fn encode_result(out: &mut String, r: &SimResult) {
        push_f64s(out, "starting_utilities", &r.starting_utilities);
        push_state(out, "initial_state", &r.initial_state);
        let _ = writeln!(out, "rounds {}", r.rounds.len());
        for round in &r.rounds {
            let _ = writeln!(
                out,
                "round {} {} {}",
                round.round, round.secure_ases_after, round.secure_isps_after
            );
            push_f64s(out, "utilities", &round.utilities);
            let _ = write!(out, "projected {}", round.projected.len());
            for (n, p) in &round.projected {
                let _ = write!(out, " {}:{:016x}", n.0, p.to_bits());
            }
            out.push('\n');
            push_ids(out, "turned_on", &round.turned_on);
            push_ids(out, "turned_off", &round.turned_off);
            push_ids(out, "newly_secure_stubs", &round.newly_secure_stubs);
        }
        push_state(out, "final_state", &r.final_state);
        match r.outcome {
            Outcome::Stable { round } => {
                let _ = writeln!(out, "outcome stable {round}");
            }
            Outcome::Oscillation { first_seen, period } => {
                let _ = writeln!(out, "outcome oscillation {first_seen} {period}");
            }
            Outcome::MaxRounds => {
                let _ = writeln!(out, "outcome maxrounds");
            }
        }
        push_ids(out, "early_adopters", &r.early_adopters);
        let _ = writeln!(out, "completeness {:016x}", r.completeness.to_bits());
        let _ = writeln!(out, "quarantined {}", r.quarantined.len());
        for q in &r.quarantined {
            let _ = writeln!(
                out,
                "quarantine {} {} {} {}",
                q.dest.0,
                q.attempts,
                q.kind,
                hex_str(&q.message)
            );
        }
        let _ = writeln!(out, "self_checked {}", r.self_checked);
        let _ = writeln!(out, "violations {}", r.violations.len());
        for v in &r.violations {
            let _ = writeln!(
                out,
                "violation {} {} {}",
                v.dest.0,
                hex_str(&v.detail),
                hex_str(&v.artifact)
            );
        }
        push_ids(out, "deadline_skipped", &r.deadline_skipped);
    }

    /// Append the encoding of an [`EngineStats`](crate::engine::EngineStats)
    /// as one `stats` line — the 17 counters in declaration order.
    /// Checkpoints deliberately do *not* persist stats (they describe
    /// the producing run, not the result); this exists for the shard
    /// worker protocol, where the supervisor must sum per-worker
    /// counters to keep `[engine]` summaries accurate.
    pub fn encode_stats(out: &mut String, s: &crate::engine::EngineStats) {
        let _ = writeln!(
            out,
            "stats {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {}",
            s.contexts_computed,
            s.trees_computed,
            s.dests_computed,
            s.dests_reused,
            s.passes,
            s.compute_ns,
            s.atlas_hits,
            s.atlas_misses,
            s.atlas_stored,
            s.atlas_evicted,
            s.atlas_bytes,
            s.atlas_raw_bytes,
            s.atlas_build_ns,
            s.delta_hits,
            s.delta_fallbacks,
            s.delta_touched_nodes,
            s.delta_full_nodes,
        );
    }

    /// Decode one `stats` line written by [`encode_stats`].
    pub fn decode_stats(p: &mut Parser<'_>) -> Result<crate::engine::EngineStats, DecodeError> {
        let vals = p.tagged_u64s("stats", 17)?;
        Ok(crate::engine::EngineStats {
            contexts_computed: vals[0],
            trees_computed: vals[1],
            dests_computed: vals[2],
            dests_reused: vals[3],
            passes: vals[4],
            compute_ns: vals[5],
            atlas_hits: vals[6],
            atlas_misses: vals[7],
            atlas_stored: vals[8],
            atlas_evicted: vals[9],
            atlas_bytes: vals[10],
            atlas_raw_bytes: vals[11],
            atlas_build_ns: vals[12],
            delta_hits: vals[13],
            delta_fallbacks: vals[14],
            delta_touched_nodes: vals[15],
            delta_full_nodes: vals[16],
        })
    }

    /// Line-cursor over encoded text, tracking 1-based line numbers
    /// for error reporting.
    pub struct Parser<'a> {
        lines: std::str::Lines<'a>,
        line_no: usize,
    }

    impl<'a> Parser<'a> {
        /// Parse from the start of `text`.
        pub fn new(text: &'a str) -> Self {
            Parser {
                lines: text.lines(),
                line_no: 0,
            }
        }

        fn err(&self, message: impl Into<String>) -> DecodeError {
            DecodeError {
                line: self.line_no,
                message: message.into(),
            }
        }

        fn next_line(&mut self) -> Result<&'a str, DecodeError> {
            self.line_no += 1;
            self.lines
                .next()
                .ok_or_else(|| self.err("unexpected end of file"))
        }

        /// Consume a line that must equal `expected` exactly.
        pub fn expect_line(&mut self, expected: &str) -> Result<(), DecodeError> {
            let line = self.next_line()?;
            if line != expected {
                return Err(self.err(format!("expected {expected:?}, found {line:?}")));
            }
            Ok(())
        }

        /// Consume `tag <rest>` and return the tokens after the tag.
        fn tagged(&mut self, tag: &str) -> Result<std::str::SplitWhitespace<'a>, DecodeError> {
            let line = self.next_line()?;
            let mut toks = line.split_whitespace();
            match toks.next() {
                Some(t) if t == tag => Ok(toks),
                other => Err(self.err(format!("expected tag {tag:?}, found {other:?}"))),
            }
        }

        fn one_token(&mut self, tag: &str) -> Result<&'a str, DecodeError> {
            let mut toks = self.tagged(tag)?;
            let tok = toks
                .next()
                .ok_or_else(|| self.err(format!("{tag}: missing value")))?;
            if toks.next().is_some() {
                return Err(self.err(format!("{tag}: trailing tokens")));
            }
            Ok(tok)
        }

        /// Consume `tag <decimal>`.
        pub fn tagged_usize(&mut self, tag: &str) -> Result<usize, DecodeError> {
            let tok = self.one_token(tag)?;
            tok.parse()
                .map_err(|_| self.err(format!("{tag}: bad count {tok:?}")))
        }

        /// Consume `tag <16-digit hex>`.
        pub fn tagged_u64_hex(&mut self, tag: &str) -> Result<u64, DecodeError> {
            let tok = self.one_token(tag)?;
            u64::from_str_radix(tok, 16).map_err(|_| self.err(format!("{tag}: bad hex {tok:?}")))
        }

        /// Consume `tag <v0> <v1> … <v(count-1)>` — exactly `count`
        /// decimal `u64` values.
        pub fn tagged_u64s(&mut self, tag: &str, count: usize) -> Result<Vec<u64>, DecodeError> {
            let toks = self.tagged(tag)?;
            let mut out = Vec::with_capacity(count);
            for tok in toks {
                let v: u64 = tok
                    .parse()
                    .map_err(|_| self.err(format!("{tag}: bad value {tok:?}")))?;
                out.push(v);
            }
            if out.len() != count {
                return Err(self.err(format!("{tag}: expected {count} values, got {}", out.len())));
            }
            Ok(out)
        }

        /// Consume `tag <hex string>` and decode it.
        pub fn tagged_hex_str(&mut self, tag: &str) -> Result<String, DecodeError> {
            let tok = self.one_token(tag)?;
            unhex_str(tok).ok_or_else(|| self.err(format!("{tag}: bad hex string")))
        }

        fn tagged_f64s(&mut self, tag: &str) -> Result<Vec<f64>, DecodeError> {
            let mut toks = self.tagged(tag)?;
            let count: usize = toks
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| self.err(format!("{tag}: bad count")))?;
            let mut out = Vec::with_capacity(count);
            for tok in toks.by_ref() {
                let bits = u64::from_str_radix(tok, 16)
                    .map_err(|_| self.err(format!("{tag}: bad f64 bits {tok:?}")))?;
                out.push(f64::from_bits(bits));
            }
            if out.len() != count {
                return Err(self.err(format!("{tag}: expected {count} values, got {}", out.len())));
            }
            Ok(out)
        }

        fn tagged_ids(&mut self, tag: &str) -> Result<Vec<AsId>, DecodeError> {
            let mut toks = self.tagged(tag)?;
            let count: usize = toks
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| self.err(format!("{tag}: bad count")))?;
            let mut out = Vec::with_capacity(count);
            for tok in toks.by_ref() {
                let id: u32 = tok
                    .parse()
                    .map_err(|_| self.err(format!("{tag}: bad node id {tok:?}")))?;
                out.push(AsId(id));
            }
            if out.len() != count {
                return Err(self.err(format!("{tag}: expected {count} ids, got {}", out.len())));
            }
            Ok(out)
        }

        fn tagged_state(&mut self, tag: &str) -> Result<SecureSet, DecodeError> {
            let mut toks = self.tagged(tag)?;
            let capacity: usize = toks
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| self.err(format!("{tag}: bad capacity")))?;
            let mut s = SecureSet::new(capacity);
            for tok in toks {
                let id: u32 = tok
                    .parse()
                    .map_err(|_| self.err(format!("{tag}: bad node id {tok:?}")))?;
                if id as usize >= capacity {
                    return Err(self.err(format!("{tag}: id {id} out of capacity {capacity}")));
                }
                s.set(AsId(id), true);
            }
            Ok(s)
        }
    }

    /// Decode one [`SimResult`] from the cursor.
    pub fn decode_result(p: &mut Parser<'_>) -> Result<SimResult, DecodeError> {
        let starting_utilities = p.tagged_f64s("starting_utilities")?;
        let initial_state = p.tagged_state("initial_state")?;
        let n_rounds = p.tagged_usize("rounds")?;
        let mut rounds = Vec::with_capacity(n_rounds);
        for _ in 0..n_rounds {
            let mut toks = p.tagged("round")?;
            let next_usize = |what: &str, toks: &mut std::str::SplitWhitespace<'_>| {
                toks.next()
                    .and_then(|t| t.parse::<usize>().ok())
                    .ok_or_else(|| DecodeError {
                        line: 0,
                        message: format!("round: bad {what}"),
                    })
            };
            let round = next_usize("number", &mut toks)?;
            let secure_ases_after = next_usize("secure_ases_after", &mut toks)?;
            let secure_isps_after = next_usize("secure_isps_after", &mut toks)?;
            let utilities = p.tagged_f64s("utilities")?;
            let mut ptoks = p.tagged("projected")?;
            let count: usize = ptoks
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| p.err("projected: bad count"))?;
            let mut projected = Vec::with_capacity(count);
            for tok in ptoks {
                let (id, bits) = tok
                    .split_once(':')
                    .ok_or_else(|| p.err(format!("projected: bad pair {tok:?}")))?;
                let id: u32 = id
                    .parse()
                    .map_err(|_| p.err(format!("projected: bad node id {id:?}")))?;
                let bits = u64::from_str_radix(bits, 16)
                    .map_err(|_| p.err(format!("projected: bad f64 bits {bits:?}")))?;
                projected.push((AsId(id), f64::from_bits(bits)));
            }
            if projected.len() != count {
                return Err(p.err(format!(
                    "projected: expected {count} pairs, got {}",
                    projected.len()
                )));
            }
            let turned_on = p.tagged_ids("turned_on")?;
            let turned_off = p.tagged_ids("turned_off")?;
            let newly_secure_stubs = p.tagged_ids("newly_secure_stubs")?;
            rounds.push(RoundRecord {
                round,
                utilities,
                projected,
                turned_on,
                turned_off,
                newly_secure_stubs,
                secure_ases_after,
                secure_isps_after,
            });
        }
        let final_state = p.tagged_state("final_state")?;
        let mut otoks = p.tagged("outcome")?;
        let outcome = match otoks.next() {
            Some("stable") => Outcome::Stable {
                round: otoks
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| p.err("outcome stable: bad round"))?,
            },
            Some("oscillation") => {
                let first_seen = otoks
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| p.err("outcome oscillation: bad first_seen"))?;
                let period = otoks
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| p.err("outcome oscillation: bad period"))?;
                Outcome::Oscillation { first_seen, period }
            }
            Some("maxrounds") => Outcome::MaxRounds,
            other => return Err(p.err(format!("outcome: unknown kind {other:?}"))),
        };
        let early_adopters = p.tagged_ids("early_adopters")?;
        let completeness = f64::from_bits(p.tagged_u64_hex("completeness")?);
        let n_quarantined = p.tagged_usize("quarantined")?;
        let mut quarantined = Vec::with_capacity(n_quarantined);
        for _ in 0..n_quarantined {
            let mut qtoks = p.tagged("quarantine")?;
            let dest: u32 = qtoks
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| p.err("quarantine: bad dest"))?;
            let attempts: u32 = qtoks
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| p.err("quarantine: bad attempts"))?;
            let kind = match qtoks.next() {
                Some("panic") => TaskFault::Panic,
                Some("timeout") => TaskFault::TimedOut,
                other => return Err(p.err(format!("quarantine: unknown fault kind {other:?}"))),
            };
            let message = qtoks
                .next()
                .and_then(unhex_str)
                .ok_or_else(|| p.err("quarantine: bad message"))?;
            quarantined.push(QuarantinedTask {
                dest: AsId(dest),
                attempts,
                kind,
                message,
            });
        }
        let self_checked = p.tagged_usize("self_checked")?;
        let n_violations = p.tagged_usize("violations")?;
        let mut violations = Vec::with_capacity(n_violations);
        for _ in 0..n_violations {
            let mut vtoks = p.tagged("violation")?;
            let dest: u32 = vtoks
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| p.err("violation: bad dest"))?;
            let detail = vtoks
                .next()
                .and_then(unhex_str)
                .ok_or_else(|| p.err("violation: bad detail"))?;
            let artifact = vtoks
                .next()
                .and_then(unhex_str)
                .ok_or_else(|| p.err("violation: bad artifact"))?;
            violations.push(SelfCheckViolation {
                dest: AsId(dest),
                detail,
                artifact,
            });
        }
        let deadline_skipped = p.tagged_ids("deadline_skipped")?;
        Ok(SimResult {
            starting_utilities,
            initial_state,
            rounds,
            final_state,
            outcome,
            early_adopters,
            completeness,
            quarantined,
            self_checked,
            violations,
            deadline_skipped,
            // Work counters are diagnostics of the producing run, not
            // results; they are not encoded and decode to zeros.
            stats: crate::engine::EngineStats::default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ChaosPlan, SimConfig};
    use crate::early::EarlyAdopters;
    use crate::sim::Simulation;
    use sbgp_asgraph::gen::{generate, GenParams};
    use sbgp_asgraph::Weights;
    use sbgp_routing::HashTieBreak;

    fn sample_result(seed: u64, chaos: Option<ChaosPlan>) -> SimResult {
        let g = generate(&GenParams::new(120, seed)).graph;
        let w = Weights::with_cp_fraction(&g, 0.10);
        let cfg = SimConfig {
            theta: 0.05,
            max_task_retries: 0,
            chaos,
            ..SimConfig::default()
        };
        let adopters = EarlyAdopters::ContentProvidersPlusTopIsps(5).select(&g);
        Simulation::new(&g, &w, &HashTieBreak, cfg).run(&adopters)
    }

    #[test]
    fn codec_round_trips_bit_exactly() {
        for chaos in [
            None,
            Some(ChaosPlan {
                dest: 7,
                fail_attempts: u32::MAX,
                ..ChaosPlan::default()
            }),
        ] {
            let r = sample_result(42, chaos);
            let mut text = String::new();
            codec::encode_result(&mut text, &r);
            let mut p = codec::Parser::new(&text);
            let back = codec::decode_result(&mut p).unwrap();
            assert_eq!(back, r);
            // Bit-exact, not just PartialEq-equal.
            for (a, b) in r
                .starting_utilities
                .iter()
                .zip(back.starting_utilities.iter())
            {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn save_load_round_trip() {
        let dir = std::env::temp_dir().join("sbgp_ckpt_roundtrip");
        let path = dir.join("sweep.ckpt");
        let _ = std::fs::remove_file(&path);
        let fp = params_fingerprint(&["ases=120", "seed=42"]);
        let mut ckpt = SweepCheckpoint::new(fp);
        ckpt.insert("theta=0.05", sample_result(42, None));
        ckpt.insert("theta=0.10", sample_result(43, None));
        ckpt.save(&path).unwrap();
        let back = SweepCheckpoint::load(&path, fp).unwrap();
        assert_eq!(back, ckpt);
        assert!(back.get("theta=0.05").is_some());
        assert!(back.get("theta=0.20").is_none());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn params_mismatch_is_refused() {
        let dir = std::env::temp_dir().join("sbgp_ckpt_mismatch");
        let path = dir.join("sweep.ckpt");
        let _ = std::fs::remove_file(&path);
        let mut ckpt = SweepCheckpoint::new(1);
        ckpt.insert("unit", sample_result(42, None));
        ckpt.save(&path).unwrap();
        match SweepCheckpoint::load(&path, 2) {
            Err(CheckpointError::ParamsMismatch {
                expected, found, ..
            }) => {
                assert_eq!((expected, found), (2, 1));
            }
            other => panic!("expected ParamsMismatch, got {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_file_is_a_typed_error() {
        let dir = std::env::temp_dir().join("sbgp_ckpt_corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.ckpt");
        std::fs::write(&path, "sbgp-checkpoint v2\nfingerprint zzzz\n").unwrap();
        assert!(matches!(
            SweepCheckpoint::load(&path, 0),
            Err(CheckpointError::Corrupt { line: 2, .. })
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn load_or_new_on_missing_file() {
        let path = std::env::temp_dir().join("sbgp_ckpt_never_written.ckpt");
        let _ = std::fs::remove_file(&path);
        let ckpt = SweepCheckpoint::load_or_new(&path, 9).unwrap();
        assert!(ckpt.is_empty());
        assert_eq!(ckpt.fingerprint, 9);
    }

    #[test]
    fn journal_append_replay_round_trip() {
        let dir = std::env::temp_dir().join("sbgp_journal_roundtrip");
        let path = dir.join("sweep.journal");
        let _ = std::fs::remove_file(&path);
        let r1 = sample_result(42, None);
        let r2 = sample_result(43, None);
        {
            let mut j = UnitJournal::open(&path).unwrap();
            j.append("theta=0.05", &r1).unwrap();
            j.append("theta=0.10", &r2).unwrap();
        }
        let (units, report) = UnitJournal::replay(&path).unwrap();
        assert!(report.is_clean());
        assert_eq!(report.records, 2);
        assert_eq!(units.len(), 2);
        assert_eq!(units[0].0, "theta=0.05");
        assert_eq!(units[1].0, "theta=0.10");
        // Stats are not journaled (same contract as the checkpoint).
        let mut want = r1.clone();
        want.stats = crate::engine::EngineStats::default();
        assert_eq!(units[0].1, want);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn journal_reset_empties_the_file() {
        let dir = std::env::temp_dir().join("sbgp_journal_reset");
        let path = dir.join("sweep.journal");
        let _ = std::fs::remove_file(&path);
        let mut j = UnitJournal::open(&path).unwrap();
        j.append("a", &sample_result(42, None)).unwrap();
        j.reset().unwrap();
        let (units, report) = UnitJournal::replay(&path).unwrap();
        assert!(units.is_empty());
        assert!(report.is_clean());
        // Appends keep working after a reset.
        j.append("b", &sample_result(43, None)).unwrap();
        let (units, _) = UnitJournal::replay(&path).unwrap();
        assert_eq!(units.len(), 1);
        assert_eq!(units[0].0, "b");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_journal_tail_is_salvaged_not_fatal() {
        let dir = std::env::temp_dir().join("sbgp_journal_torn");
        let path = dir.join("sweep.journal");
        let _ = std::fs::remove_file(&path);
        {
            let mut j = UnitJournal::open(&path).unwrap();
            j.append("good", &sample_result(42, None)).unwrap();
            j.append("doomed", &sample_result(43, None)).unwrap();
        }
        let full = std::fs::read(&path).unwrap();
        let (_, clean) = UnitJournal::replay(&path).unwrap();
        assert_eq!(clean.records, 2);
        assert_eq!(clean.valid_bytes as usize, full.len());
        // Tear the second record's tail off, as a kill mid-append would.
        std::fs::write(&path, &full[..full.len() - 10]).unwrap();
        let (units, torn) = UnitJournal::replay(&path).unwrap();
        assert_eq!(units.len(), 1);
        assert_eq!(units[0].0, "good");
        assert_eq!(torn.records, 1);
        assert!(torn.torn_bytes > 0);
        // Salvage truncates to the valid prefix; replay is then clean.
        let report = UnitJournal::salvage(&path).unwrap();
        assert_eq!(report.records, 1);
        let (units, after) = UnitJournal::replay(&path).unwrap();
        assert_eq!(units.len(), 1);
        assert!(after.is_clean());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn journal_leases_replay_and_discharge() {
        let dir = std::env::temp_dir().join("sbgp_journal_leases");
        let path = dir.join("sweep.journal");
        let _ = std::fs::remove_file(&path);
        {
            let mut j = UnitJournal::open(&path).unwrap();
            j.append_lease("theta=0.05", "127.0.0.1:9001").unwrap();
            j.append_lease("theta=0.10", "process 4242").unwrap();
            j.append("theta=0.05", &sample_result(42, None)).unwrap();
            // Re-lease after a requeue: a second lease on the same key
            // updates the holder rather than duplicating the entry.
            j.append_lease("theta=0.10", "127.0.0.1:9002").unwrap();
        }
        let (records, report) = UnitJournal::replay_records(&path).unwrap();
        assert!(report.is_clean());
        assert_eq!(report.records, 4);
        // The unit-only view skips leases (back-compat for resume).
        let (units, units_report) = UnitJournal::replay(&path).unwrap();
        assert_eq!(units.len(), 1);
        assert_eq!(units[0].0, "theta=0.05");
        assert_eq!(units_report.records, 4);
        // The completed unit discharged its lease; the requeued unit's
        // lease survives with the latest holder.
        let open = UnitJournal::outstanding_leases(&records);
        assert_eq!(
            open,
            vec![("theta=0.10".to_string(), "127.0.0.1:9002".to_string())]
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_journal_replays_empty() {
        let path = std::env::temp_dir().join("sbgp_journal_never_written.journal");
        let _ = std::fs::remove_file(&path);
        let (units, report) = UnitJournal::replay(&path).unwrap();
        assert!(units.is_empty());
        assert!(report.is_clean());
    }

    #[test]
    fn stats_codec_round_trips() {
        let s = crate::engine::EngineStats {
            contexts_computed: 1,
            trees_computed: 2,
            dests_computed: 3,
            dests_reused: 4,
            passes: 5,
            compute_ns: 6,
            atlas_hits: 7,
            atlas_misses: 8,
            atlas_stored: 9,
            atlas_evicted: 10,
            atlas_bytes: 11,
            atlas_raw_bytes: 12,
            atlas_build_ns: 13,
            delta_hits: 14,
            delta_fallbacks: 15,
            delta_touched_nodes: 16,
            delta_full_nodes: 17,
        };
        let mut text = String::new();
        codec::encode_stats(&mut text, &s);
        let mut p = codec::Parser::new(&text);
        assert_eq!(codec::decode_stats(&mut p).unwrap(), s);
    }

    #[test]
    fn fingerprint_separates_parts() {
        assert_ne!(
            params_fingerprint(&["ab", "c"]),
            params_fingerprint(&["a", "bc"])
        );
        assert_eq!(
            params_fingerprint(&["x", "y"]),
            params_fingerprint(&["x", "y"])
        );
    }
}
