//! Property-based conformance suite for the adversarial scenario
//! engine: on arbitrary valley-free topologies, deployment states, and
//! (attacker, victim) pairs, the fast dirty-set engine
//! ([`sbgp_core::scenario::simulate_scenario`]) must agree with the
//! slow synchronous oracle
//! ([`sbgp_routing::scenario_oracle::converge_scenario`])
//! outcome-for-outcome — every per-node verdict, every selected path,
//! and the exact iteration count — for every attack model, a spread of
//! defense policies, and both tiebreakers. Non-convergence must agree
//! too: when one side exhausts its budget the other must exhaust the
//! same budget.
//!
//! A failing case shrinks (proptest's built-in shrinking over the
//! edge-list strategy) and the assertion message carries a replayable
//! artifact: the full edge list, secure set, attack, policy, and pair,
//! so the minimal counterexample is reproducible from the test log
//! alone — the same discipline as `delta_conformance.rs`.

use proptest::prelude::*;
use sbgp_asgraph::{AsGraph, AsGraphBuilder, AsId};
use sbgp_core::scenario::{
    run_surface, simulate_scenario, PairStrategy, ScenarioConfig, ScenarioSnapshot, ScenarioSurface,
};
use sbgp_routing::scenario_oracle::converge_scenario;
use sbgp_routing::{
    AttackModel, HashTieBreak, LowestAsnTieBreak, ScenarioPolicy, SecureSet, TieBreaker,
};

/// Arbitrary valley-free topology (provider edges point down the index
/// order, GR1 by construction) plus a deployment state and a raw
/// (attacker, victim) draw.
fn arb_case() -> impl Strategy<Value = (AsGraph, Vec<bool>, u32, u32)> {
    (6usize..24).prop_flat_map(|n| {
        let edges =
            proptest::collection::vec((0u32..n as u32, 0u32..n as u32, any::<bool>()), n..n * 3);
        let secure_bits = proptest::collection::vec(any::<bool>(), n);
        let pair = (0u32..n as u32, 0u32..n as u32);
        (Just(n), edges, secure_bits, pair).prop_map(|(n, edges, secure_bits, (a, v))| {
            let mut b = AsGraphBuilder::new();
            for i in 0..n {
                b.add_node(((i as u32) * 7919) % 10007 + 1);
            }
            for (x, y, is_peer) in edges {
                let (lo, hi) = (AsId(x.min(y)), AsId(x.max(y)));
                let _ = if is_peer {
                    b.add_peer_peer(lo, hi)
                } else {
                    b.add_provider_customer(lo, hi)
                };
            }
            (b.build().unwrap(), secure_bits, a, v)
        })
    })
}

fn secure_from_bits(bits: &[bool]) -> SecureSet {
    let mut s = SecureSet::new(bits.len());
    for (i, &on) in bits.iter().enumerate() {
        s.set(AsId(i as u32), on);
    }
    s
}

/// The policy spread every case is checked under: all three rankings,
/// ROV, and both asymmetry switches get coverage.
fn policies() -> Vec<ScenarioPolicy> {
    vec![
        ScenarioPolicy::security_third(),
        ScenarioPolicy::security_third().with_rov(),
        ScenarioPolicy::security_third().symmetric(),
        ScenarioPolicy::security_second(),
        ScenarioPolicy::security_first(),
        ScenarioPolicy::security_first().with_rov().symmetric(),
    ]
}

/// Replayable artifact: everything needed to reconstruct the case.
fn artifact(
    g: &AsGraph,
    state: &SecureSet,
    attack: AttackModel,
    policy: &ScenarioPolicy,
    attacker: AsId,
    victim: AsId,
    tb_name: &str,
) -> String {
    let mut out = format!(
        "attack: {attack}\npolicy: {}\nattacker: {} victim: {}\ntiebreaker: {tb_name}\nnodes ({}):",
        policy.label(),
        attacker.0,
        victim.0,
        g.len()
    );
    for n in g.nodes() {
        out.push_str(&format!(
            " {}:{}{}",
            n.0,
            g.asn(n),
            if state.get(n) { "*" } else { "" }
        ));
    }
    out.push_str("\nprovider->customer edges:");
    for n in g.nodes() {
        for &c in g.customers(n) {
            out.push_str(&format!(" {}->{}", n.0, c.0));
        }
    }
    out.push_str("\npeer edges:");
    for n in g.nodes() {
        for &p in g.peers(n) {
            if n.0 < p.0 {
                out.push_str(&format!(" {}--{}", n.0, p.0));
            }
        }
    }
    out.push('\n');
    out
}

/// One conformance case: fast engine vs oracle under every attack ×
/// policy for the given tiebreaker. Returns the first divergence.
fn check_case(
    g: &AsGraph,
    bits: &[bool],
    attacker: AsId,
    victim: AsId,
    tiebreaker: &dyn TieBreaker,
    tb_name: &str,
) -> Result<(), String> {
    let state = secure_from_bits(bits);
    for &attack in &AttackModel::ALL {
        for policy in &policies() {
            let fast = simulate_scenario(g, &state, policy, attack, attacker, victim, tiebreaker);
            let slow = converge_scenario(g, &state, policy, attack, attacker, victim, tiebreaker);
            let detail = match (&fast, &slow) {
                (Ok(f), Ok(s)) => {
                    if f.outcome != s.outcome {
                        Some(format!(
                            "outcomes diverge:\nfast  {:?}\noracle {:?}",
                            f.outcome, s.outcome
                        ))
                    } else if f.paths != s.paths {
                        let i = (0..f.paths.len())
                            .find(|&i| f.paths[i] != s.paths[i])
                            .expect("some path differs");
                        Some(format!(
                            "paths diverge at node {i}: fast {:?} vs oracle {:?}",
                            f.paths[i], s.paths[i]
                        ))
                    } else {
                        None
                    }
                }
                (Err(f), Err(s)) => (f.iterations != s.iterations).then(|| {
                    format!(
                        "both exhausted but budgets disagree: fast {} vs oracle {}",
                        f.iterations, s.iterations
                    )
                }),
                (Ok(f), Err(s)) => Some(format!(
                    "fast converged in {} iters but the oracle exhausted at {}",
                    f.outcome.iterations, s.iterations
                )),
                (Err(f), Ok(s)) => Some(format!(
                    "fast exhausted at {} but the oracle converged in {} iters",
                    f.iterations, s.outcome.iterations
                )),
            };
            if let Some(d) = detail {
                return Err(format!(
                    "{d}\n{}",
                    artifact(g, &state, attack, policy, attacker, victim, tb_name)
                ));
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// 256 arbitrary worlds × 4 attacks × 6 policies × both
    /// tiebreakers: the fast engine is the oracle, path-for-path and
    /// iteration-for-iteration.
    #[test]
    fn fast_engine_matches_the_oracle((g, bits, a, v) in arb_case()) {
        let n = g.len() as u32;
        let attacker = AsId(a % n);
        // A raw draw may collide; shift the victim off the attacker.
        let victim = if a % n == v % n { AsId((v + 1) % n) } else { AsId(v % n) };
        if let Err(e) = check_case(&g, &bits, attacker, victim, &HashTieBreak, "hash") {
            prop_assert!(false, "{e}");
        }
        if let Err(e) = check_case(&g, &bits, attacker, victim, &LowestAsnTieBreak, "lowest-asn") {
            prop_assert!(false, "{e}");
        }
    }

    /// The aggregated surface is exactly `==` at any thread count —
    /// on arbitrary worlds, not just the generator's.
    #[test]
    fn surface_is_thread_count_independent((g, bits, _, _) in arb_case()) {
        let snaps = vec![
            ScenarioSnapshot { label: "pre".into(), state: SecureSet::new(g.len()) },
            ScenarioSnapshot { label: "mid".into(), state: secure_from_bits(&bits) },
        ];
        let cfg = ScenarioConfig {
            attacks: AttackModel::ALL.to_vec(),
            policies: vec![
                ScenarioPolicy::security_third(),
                ScenarioPolicy::security_third().with_rov(),
            ],
            pairs: 3,
            strategy: PairStrategy::SeededRandom,
            seed: 11,
            threads: 1,
            self_check: 0.5,
        };
        let runs: Vec<ScenarioSurface> = [1usize, 2, 4, 8]
            .iter()
            .map(|&t| {
                let mut c = cfg.clone();
                c.threads = t;
                run_surface(&g, &snaps, &c, &HashTieBreak)
            })
            .collect();
        for r in &runs[1..] {
            prop_assert_eq!(r, &runs[0]);
        }
        prop_assert!(runs[0].mismatches.is_empty(), "{:?}", runs[0].mismatches);
    }
}
