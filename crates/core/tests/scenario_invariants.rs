//! Invariant and metamorphic tests for the adversarial scenario layer,
//! pinned to the claims the paper family makes:
//!
//! * every scenario partitions the non-origin ASes exactly (deceived +
//!   reached + unreachable = n − 2);
//! * full (symmetric) deployment stops origin hijacks and path
//!   forgeries cold, and ROV stops protocol downgrades;
//! * a Lychev-style downgrade is at least as damaging as the plain
//!   hijack it camouflages, pair for pair (security-third, no ROV);
//! * with nobody deployed, an origin hijack deceives roughly half the
//!   Internet — the Goldberg et al. baseline the paper leans on.

use sbgp_asgraph::gen::{generate, GenParams};
use sbgp_asgraph::AsGraph;
use sbgp_core::scenario::{select_pairs, simulate_scenario, PairStrategy};
use sbgp_routing::{AttackModel, HashTieBreak, ScenarioPolicy, SecureSet};

fn world(seed: u64) -> AsGraph {
    generate(&GenParams::new(150, seed)).graph
}

/// A mid-deployment state: every other AS secure.
fn half_secure(g: &AsGraph) -> SecureSet {
    let mut s = SecureSet::new(g.len());
    for x in g.nodes().step_by(2) {
        s.set(x, true);
    }
    s
}

fn all_secure(g: &AsGraph) -> SecureSet {
    let mut s = SecureSet::new(g.len());
    for x in g.nodes() {
        s.set(x, true);
    }
    s
}

#[test]
fn every_scenario_partitions_the_nonorigin_ases() {
    let g = world(3);
    let states = [SecureSet::new(g.len()), half_secure(&g), all_secure(&g)];
    let policies = [
        ScenarioPolicy::security_third(),
        ScenarioPolicy::security_third().with_rov(),
        ScenarioPolicy::security_second(),
        ScenarioPolicy::security_first(),
    ];
    for (attacker, victim) in select_pairs(&g, PairStrategy::SeededRandom, 4, 7) {
        for state in &states {
            for &attack in &AttackModel::ALL {
                for policy in &policies {
                    let Ok(run) = simulate_scenario(
                        &g,
                        state,
                        policy,
                        attack,
                        attacker,
                        victim,
                        &HashTieBreak,
                    ) else {
                        continue; // non-convergence is quarantined, not an invariant
                    };
                    let o = &run.outcome;
                    assert_eq!(
                        o.deceived + o.reached_victim + o.unreachable,
                        g.len() - 2,
                        "{attack} under {} leaks nodes from the partition",
                        policy.label()
                    );
                    assert_eq!(o.verdicts.len(), g.len());
                }
            }
        }
    }
}

#[test]
fn full_symmetric_deployment_stops_hijack_and_forgery() {
    let g = world(5);
    let state = all_secure(&g);
    // Symmetric: stubs validate too, so *every* non-attacker AS drops
    // the bogus announcement — the end state the transition aims for.
    let policy = ScenarioPolicy::security_third().symmetric();
    for (attacker, victim) in select_pairs(&g, PairStrategy::DegreeStratified, 6, 11) {
        for attack in [AttackModel::OriginHijack, AttackModel::PathForgery] {
            let run =
                simulate_scenario(&g, &state, &policy, attack, attacker, victim, &HashTieBreak)
                    .expect("security-third converges");
            assert_eq!(
                run.outcome.deceived, 0,
                "{attack} deceived someone under full symmetric deployment"
            );
        }
    }
}

#[test]
fn rov_stops_downgrades_that_path_validation_cannot() {
    let g = world(5);
    let state = all_secure(&g);
    let plain = ScenarioPolicy::security_third().symmetric();
    let rov = plain.with_rov();
    let mut evaded = 0usize;
    for (attacker, victim) in select_pairs(&g, PairStrategy::SeededRandom, 8, 13) {
        let down = |p: &ScenarioPolicy| {
            simulate_scenario(
                &g,
                &state,
                p,
                AttackModel::Downgrade,
                attacker,
                victim,
                &HashTieBreak,
            )
            .expect("security-third converges")
            .outcome
            .deceived
        };
        // The downgrade walks past path validation entirely...
        evaded += down(&plain);
        // ...but the forged one-hop origin is exactly what ROV checks.
        assert_eq!(down(&rov), 0, "ROV should reject the downgraded origin");
    }
    assert!(
        evaded > 0,
        "a downgrade should deceive someone despite full path-validator deployment"
    );
}

#[test]
fn downgrade_is_at_least_as_damaging_as_the_hijack_it_hides() {
    // Lychev monotonicity: under security-third without ROV, the
    // downgrade's announcement is the hijack's minus the rejections,
    // so its deceived set can only grow — pair for pair, not just on
    // average.
    let policy = ScenarioPolicy::security_third();
    for seed in [3, 5, 9] {
        let g = world(seed);
        let state = half_secure(&g);
        for (attacker, victim) in select_pairs(&g, PairStrategy::SeededRandom, 6, seed) {
            let run = |attack| {
                simulate_scenario(&g, &state, &policy, attack, attacker, victim, &HashTieBreak)
                    .expect("security-third converges")
                    .outcome
                    .deceived
            };
            let (hijack, downgrade) = (run(AttackModel::OriginHijack), run(AttackModel::Downgrade));
            assert!(
                downgrade >= hijack,
                "seed {seed}, pair ({}, {}): downgrade {downgrade} < hijack {hijack}",
                attacker.0,
                victim.0
            );
        }
    }
}

#[test]
fn with_nobody_deployed_a_hijack_takes_about_half_the_internet() {
    // Goldberg et al.'s baseline (the paper's motivation): a random
    // origin hijack against an undefended Internet splits it roughly
    // in half between victim and attacker.
    let g = world(42);
    let state = SecureSet::new(g.len());
    let policy = ScenarioPolicy::security_third();
    let pairs = select_pairs(&g, PairStrategy::SeededRandom, 20, 42);
    let mut mean = 0.0;
    for &(attacker, victim) in &pairs {
        let run = simulate_scenario(
            &g,
            &state,
            &policy,
            AttackModel::OriginHijack,
            attacker,
            victim,
            &HashTieBreak,
        )
        .expect("security-third converges");
        mean += run.outcome.deceived_fraction();
    }
    mean /= pairs.len() as f64;
    assert!(
        (0.25..=0.75).contains(&mean),
        "undefended hijack deceived {mean:.3} of the Internet, expected roughly half"
    );
}
