//! Property-based conformance suite for the C.4-3 delta-projection
//! kernel: on arbitrary valley-free topologies, deployment states, and
//! candidate sets, `--delta-projections on` must produce *bit-for-bit*
//! the same round computation as the full recompute (`off`) — exact
//! `==` on every f64, not tolerance — in both utility models and under
//! both tiebreakers.
//!
//! A failing case shrinks (proptest's built-in shrinking over the
//! edge-list strategy) and the assertion message carries a
//! diffcheck-style artifact: the full edge list, secure set, candidate
//! kind, and the first diverging value pair, so the minimal
//! counterexample is reproducible from the test log alone.

use proptest::prelude::*;
use sbgp_asgraph::{AsGraph, AsGraphBuilder, AsId};
use sbgp_core::{DeltaMode, SimConfig, UtilityEngine, UtilityModel};
use sbgp_routing::{HashTieBreak, LowestAsnTieBreak, SecureSet, TieBreaker};

/// Arbitrary valley-free topology: provider edges point from lower to
/// higher index (GR1 by construction), peer edges anywhere, scrambled
/// ASNs so tiebreaks are non-trivial.
fn arb_graph() -> impl Strategy<Value = (AsGraph, Vec<bool>)> {
    (6usize..30).prop_flat_map(|n| {
        let edges =
            proptest::collection::vec((0u32..n as u32, 0u32..n as u32, any::<bool>()), n..n * 3);
        let secure_bits = proptest::collection::vec(any::<bool>(), n);
        (Just(n), edges, secure_bits).prop_map(|(n, edges, secure_bits)| {
            let mut b = AsGraphBuilder::new();
            for i in 0..n {
                b.add_node(((i as u32) * 7919) % 10007 + 1);
            }
            for (x, y, is_peer) in edges {
                let (a, c) = (AsId(x.min(y)), AsId(x.max(y)));
                let _ = if is_peer {
                    b.add_peer_peer(a, c)
                } else {
                    b.add_provider_customer(a, c)
                };
            }
            (b.build().unwrap(), secure_bits)
        })
    })
}

fn secure_from_bits(bits: &[bool]) -> SecureSet {
    let mut s = SecureSet::new(bits.len());
    for (i, &on) in bits.iter().enumerate() {
        s.set(AsId(i as u32), on);
    }
    s
}

/// Diffcheck-style artifact: everything needed to replay the case by
/// hand, printed when a conformance assertion fails.
fn artifact(g: &AsGraph, state: &SecureSet, model: UtilityModel, tb_name: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "model: {model:?}\ntiebreaker: {tb_name}\nnodes ({}):",
        g.len()
    ));
    for n in g.nodes() {
        out.push_str(&format!(
            " {}:{}{}",
            n.0,
            g.asn(n),
            if state.get(n) { "*" } else { "" }
        ));
    }
    out.push_str("\nprovider->customer edges:");
    for n in g.nodes() {
        for &c in g.customers(n) {
            out.push_str(&format!(" {}->{}", n.0, c.0));
        }
    }
    out.push_str("\npeer edges:");
    for n in g.nodes() {
        for &p in g.peers(n) {
            if n.0 < p.0 {
                out.push_str(&format!(" {}--{}", n.0, p.0));
            }
        }
    }
    out.push('\n');
    out
}

/// Run one conformance case: delta `On` (and `Auto`) vs full recompute
/// `Off`, exact equality on every array. Returns an error description
/// on the first divergence.
fn check_case(
    g: &AsGraph,
    bits: &[bool],
    model: UtilityModel,
    tiebreaker: &dyn TieBreaker,
    tb_name: &str,
) -> Result<(), String> {
    let w = sbgp_asgraph::Weights::uniform(g);
    let state = secure_from_bits(bits);
    // Candidates: every insecure ISP wants to turn on; in the incoming
    // model secure ISPs also weigh turning off (Section 7).
    let candidates: Vec<AsId> = g
        .isps()
        .filter(|&x| !state.get(x) || model == UtilityModel::Incoming)
        .collect();
    if candidates.is_empty() {
        return Ok(());
    }
    let run = |mode: DeltaMode| {
        let cfg = SimConfig {
            model,
            delta_projections: mode,
            ..SimConfig::default()
        };
        let engine = UtilityEngine::new(g, &w, tiebreaker, cfg);
        let comp = engine.compute(&state, &candidates);
        (comp, engine.stats())
    };
    let (full, _) = run(DeltaMode::Off);
    for mode in [DeltaMode::On, DeltaMode::Auto] {
        let (delta, stats) = run(mode);
        for (name, a, b) in [
            ("base_out", &full.base_out, &delta.base_out),
            ("base_in", &full.base_in, &delta.base_in),
            ("proj_out", &full.proj_out, &delta.proj_out),
            ("proj_in", &full.proj_in, &delta.proj_in),
        ] {
            for i in 0..a.len() {
                if a[i].to_bits() != b[i].to_bits() {
                    return Err(format!(
                        "{name}[{i}] diverges under {mode:?}: full {:?} ({:#018x}) vs \
                         delta {:?} ({:#018x})\ndelta stats: {stats:?}\n{}",
                        a[i],
                        a[i].to_bits(),
                        b[i],
                        b[i].to_bits(),
                        artifact(g, &state, model, tb_name),
                    ));
                }
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Outgoing model (Eq. 1): 256 arbitrary worlds, both tiebreakers.
    #[test]
    fn delta_is_bit_identical_outgoing((g, bits) in arb_graph()) {
        if let Err(e) = check_case(&g, &bits, UtilityModel::Outgoing, &HashTieBreak, "hash") {
            prop_assert!(false, "{e}");
        }
        if let Err(e) =
            check_case(&g, &bits, UtilityModel::Outgoing, &LowestAsnTieBreak, "lowest-asn")
        {
            prop_assert!(false, "{e}");
        }
    }

    /// Incoming model (Eq. 2), which adds turn-off candidates.
    #[test]
    fn delta_is_bit_identical_incoming((g, bits) in arb_graph()) {
        if let Err(e) = check_case(&g, &bits, UtilityModel::Incoming, &HashTieBreak, "hash") {
            prop_assert!(false, "{e}");
        }
        if let Err(e) =
            check_case(&g, &bits, UtilityModel::Incoming, &LowestAsnTieBreak, "lowest-asn")
        {
            prop_assert!(false, "{e}");
        }
    }
}
