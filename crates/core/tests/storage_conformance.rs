//! Backend-conformance suite for the storage layer.
//!
//! Every [`StorageBackend`] must satisfy the same observable contract —
//! the sweeps, checkpoints, and journals built on top never know which
//! backend they run on. The suite below runs verbatim against
//! `LocalDisk`, `InMemory`, and a `FaultStore`-wrapped `LocalDisk`
//! under a fault schedule plus the default retry policy (proving that
//! retried transient faults are contract-invisible).

use sbgp_core::storage::{DiskChaosProfile, InMemory, LocalDisk, LockOutcome, Store};
use std::path::PathBuf;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sbgp-storeconf-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Every Store the suite must hold for, named for failure messages.
fn backends(tag: &str) -> Vec<(&'static str, Store, Option<PathBuf>)> {
    let d1 = tmp_dir(&format!("{tag}-disk"));
    let d2 = tmp_dir(&format!("{tag}-fault"));
    let profile =
        DiskChaosProfile::parse("eio=0.1,enospc=0.05,torn=0.05,crash=0.05,corrupt=0.05,seed=99")
            .unwrap();
    vec![
        ("localdisk", Store::localdisk(&d1), Some(d1)),
        ("inmemory", Store::in_memory(), None),
        (
            "fault(localdisk)",
            Store::with_chaos(LocalDisk::new(&d2), profile),
            Some(d2),
        ),
    ]
}

fn cleanup(dir: Option<PathBuf>) {
    if let Some(dir) = dir {
        let _ = std::fs::remove_dir_all(dir);
    }
}

#[test]
fn put_get_overwrite_delete() {
    for (name, store, dir) in backends("putget") {
        assert_eq!(store.get("k").unwrap(), None, "{name}");
        store.put_atomic("k", b"one").unwrap();
        assert_eq!(
            store.get("k").unwrap().as_deref(),
            Some(&b"one"[..]),
            "{name}"
        );
        store.put_atomic("k", b"two").unwrap();
        assert_eq!(
            store.get("k").unwrap().as_deref(),
            Some(&b"two"[..]),
            "{name}"
        );
        store.delete("k").unwrap();
        assert_eq!(store.get("k").unwrap(), None, "{name}");
        // Deleting a missing key is not an error (cleanup is idempotent).
        store.delete("k").unwrap();
        cleanup(dir);
    }
}

#[test]
fn nested_keys_and_prefix_list() {
    for (name, store, dir) in backends("list") {
        store.put_atomic("checkpoints/a.ckpt", b"A").unwrap();
        store.put_atomic("checkpoints/b.ckpt", b"B").unwrap();
        store.put_atomic("other/c.csv", b"C").unwrap();
        let mut under = store.list("checkpoints/").unwrap();
        under.sort();
        assert_eq!(
            under,
            vec![
                "checkpoints/a.ckpt".to_string(),
                "checkpoints/b.ckpt".to_string()
            ],
            "{name}"
        );
        let all = store.list("").unwrap();
        assert_eq!(all.len(), 3, "{name}: {all:?}");
        assert_eq!(
            store.list("nosuch/").unwrap(),
            Vec::<String>::new(),
            "{name}"
        );
        cleanup(dir);
    }
}

#[test]
fn append_len_truncate() {
    for (name, store, dir) in backends("append") {
        assert_eq!(store.len("j").unwrap(), None, "{name}");
        store.append_durable("j", b"aaa").unwrap();
        store.append_durable("j", b"bbb").unwrap();
        assert_eq!(store.len("j").unwrap(), Some(6), "{name}");
        assert_eq!(
            store.get("j").unwrap().as_deref(),
            Some(&b"aaabbb"[..]),
            "{name}"
        );
        store.truncate("j", 3).unwrap();
        assert_eq!(
            store.get("j").unwrap().as_deref(),
            Some(&b"aaa"[..]),
            "{name}"
        );
        store.truncate("j", 0).unwrap();
        assert_eq!(store.len("j").unwrap(), Some(0), "{name}");
        // truncate-to-zero on a missing key creates it empty (journal
        // open semantics); any other length on a missing key is an
        // error, not silent extension.
        store.truncate("fresh", 0).unwrap();
        assert_eq!(store.len("fresh").unwrap(), Some(0), "{name}");
        assert!(store.truncate("missing", 4).is_err(), "{name}");
        cleanup(dir);
    }
}

#[test]
fn compare_and_swap_contract() {
    for (name, store, dir) in backends("cas") {
        // Create-if-absent: first writer wins.
        assert!(
            store.compare_and_swap("c", None, b"first").unwrap(),
            "{name}"
        );
        assert!(
            !store.compare_and_swap("c", None, b"second").unwrap(),
            "{name}"
        );
        assert_eq!(
            store.get("c").unwrap().as_deref(),
            Some(&b"first"[..]),
            "{name}"
        );
        // Swap: succeeds only from the expected value.
        assert!(
            !store.compare_and_swap("c", Some(b"wrong"), b"x").unwrap(),
            "{name}"
        );
        assert!(
            store
                .compare_and_swap("c", Some(b"first"), b"next")
                .unwrap(),
            "{name}"
        );
        assert_eq!(
            store.get("c").unwrap().as_deref(),
            Some(&b"next"[..]),
            "{name}"
        );
        // Swap against a missing key fails cleanly.
        assert!(
            !store.compare_and_swap("nope", Some(b"v"), b"x").unwrap(),
            "{name}"
        );
        cleanup(dir);
    }
}

#[test]
fn lock_protocol() {
    for (name, store, dir) in backends("lock") {
        assert!(
            matches!(store.try_lock("l", "pid 1").unwrap(), LockOutcome::Acquired),
            "{name}"
        );
        // Re-entrant for the same owner.
        assert!(
            matches!(store.try_lock("l", "pid 1").unwrap(), LockOutcome::Acquired),
            "{name}"
        );
        match store.try_lock("l", "pid 2").unwrap() {
            LockOutcome::Held { owner } => assert_eq!(owner, "pid 1", "{name}"),
            other => panic!("{name}: expected Held, got {other:?}"),
        }
        // Takeover moves the lock only from the expected owner.
        assert!(!store.takeover("l", "pid 99", "pid 2").unwrap(), "{name}");
        assert!(store.takeover("l", "pid 1", "pid 2").unwrap(), "{name}");
        // Unlock by a non-owner is a no-op; by the owner it releases.
        store.unlock("l", "pid 1").unwrap();
        assert!(
            matches!(
                store.try_lock("l", "pid 3").unwrap(),
                LockOutcome::Held { .. }
            ),
            "{name}"
        );
        store.unlock("l", "pid 2").unwrap();
        assert!(
            matches!(store.try_lock("l", "pid 3").unwrap(), LockOutcome::Acquired),
            "{name}"
        );
        cleanup(dir);
    }
}

#[test]
fn keys_are_validated_uniformly() {
    for (name, store, dir) in backends("keys") {
        for bad in ["", "/abs", "a/../b", "a//b", "../up"] {
            let err = store.put_atomic(bad, b"x").unwrap_err();
            assert!(!err.is_transient(), "{name}: {bad:?} must be permanent");
        }
        cleanup(dir);
    }
}

/// The `LocalDisk` layout is plain files under the root — existing
/// artifacts written by older code load through the trait unchanged.
#[test]
fn localdisk_is_plain_files() {
    let dir = tmp_dir("plain");
    std::fs::create_dir_all(dir.join("checkpoints")).unwrap();
    std::fs::write(dir.join("checkpoints/old.ckpt"), b"legacy bytes").unwrap();
    let store = Store::localdisk(&dir);
    assert_eq!(
        store.get("checkpoints/old.ckpt").unwrap().as_deref(),
        Some(&b"legacy bytes"[..])
    );
    store.put_atomic("fig9.csv", b"h\n1\n").unwrap();
    assert_eq!(std::fs::read(dir.join("fig9.csv")).unwrap(), b"h\n1\n");
    // InMemory holds the same contract without any filesystem at all.
    let mem = InMemory::default();
    let mem = Store::new(mem);
    mem.put_atomic("fig9.csv", b"h\n1\n").unwrap();
    assert_eq!(
        mem.get("fig9.csv").unwrap().as_deref(),
        Some(&b"h\n1\n"[..])
    );
    let _ = std::fs::remove_dir_all(dir);
}
