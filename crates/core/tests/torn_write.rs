//! Crash-consistency property suite for the checkpoint/journal layer.
//!
//! A power loss or SIGKILL can truncate a file at **any** byte. The
//! contract under test: for every possible truncation point,
//!
//! * a checkpoint file either loads or fails with a typed
//!   [`CheckpointError`] — never a panic;
//! * a unit journal replays the salvaged record prefix exactly (the
//!   longest prefix of appends whose records survived intact) and
//!   reports the torn remainder — never a panic, never a wrong or
//!   reordered unit.
//!
//! Exhaustive over offsets rather than sampled: the files are small
//! and the failure modes (cut inside a header, inside a checksum,
//! inside a payload, at a record boundary) all occur at specific bytes.

use sbgp_asgraph::gen::{generate, GenParams};
use sbgp_asgraph::Weights;
use sbgp_core::checkpoint::{SweepCheckpoint, UnitJournal};
use sbgp_core::{EarlyAdopters, EngineStats, SimConfig, SimResult, Simulation};
use sbgp_routing::HashTieBreak;
use std::path::PathBuf;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sbgp-torn-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Two distinct, deterministic results to populate files with.
fn sample_results() -> Vec<(String, SimResult)> {
    let g = generate(&GenParams::new(120, 5)).graph;
    let w = Weights::with_cp_fraction(&g, 0.10);
    [
        ("cps;theta=0.05", EarlyAdopters::ContentProviders, 0.05),
        (
            "cps+top5;theta=0.1",
            EarlyAdopters::ContentProvidersPlusTopIsps(5),
            0.10,
        ),
    ]
    .into_iter()
    .map(|(key, adopters, theta)| {
        let cfg = SimConfig {
            theta,
            ..SimConfig::default()
        };
        let seeds = adopters.select(&g);
        let mut res = Simulation::new(&g, &w, &HashTieBreak, cfg).run(&seeds);
        // Persisted results carry zeroed stats by the codec's contract;
        // zero them up front so prefix comparisons are exact.
        res.stats = EngineStats::default();
        (key.to_string(), res)
    })
    .collect()
}

#[test]
fn checkpoint_truncated_at_every_byte_never_panics() {
    let dir = tmp_dir("ckpt");
    let full_path = dir.join("full.ckpt");
    let mut ckpt = SweepCheckpoint::new(7);
    for (key, res) in sample_results() {
        ckpt.insert(key, res);
    }
    ckpt.save(&full_path).expect("save checkpoint");
    let full = std::fs::read(&full_path).expect("read checkpoint");

    let cut_path = dir.join("cut.ckpt");
    let mut loaded_ok = 0usize;
    for cut in 0..=full.len() {
        std::fs::write(&cut_path, &full[..cut]).expect("write truncation");
        // Any outcome but a panic is acceptable; a successful parse
        // must also pass the fingerprint check.
        match SweepCheckpoint::load(&cut_path, 7) {
            Ok(c) => {
                loaded_ok += 1;
                assert!(
                    c.len() <= ckpt.len(),
                    "cut at {cut} produced more units than were saved"
                );
            }
            Err(e) => {
                // Typed error with a non-empty rendering.
                assert!(!e.to_string().is_empty(), "cut at {cut}: empty diagnostic");
            }
        }
    }
    // The untruncated file must be among the successes.
    assert!(loaded_ok >= 1, "the full file itself failed to load");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn journal_truncated_at_every_byte_salvages_an_exact_prefix() {
    let dir = tmp_dir("journal");
    let full_path = dir.join("full.journal");
    let units = sample_results();
    let mut j = UnitJournal::open(&full_path).expect("open journal");
    for (key, res) in &units {
        j.append(key, res).expect("append");
    }
    drop(j);
    let full = std::fs::read(&full_path).expect("read journal");

    // Record boundaries: replaying ever-longer prefixes of the intact
    // file tells us how many whole records fit in any cut length.
    let cut_path = dir.join("cut.journal");
    let mut boundary_cuts = 0usize;
    for cut in 0..=full.len() {
        std::fs::write(&cut_path, &full[..cut]).expect("write truncation");
        let (salvaged, report) =
            UnitJournal::replay(&cut_path).unwrap_or_else(|e| panic!("cut at {cut}: {e}"));
        // The salvaged units must be an exact prefix of what was
        // appended — same keys, same results, same order.
        assert!(
            salvaged.len() <= units.len(),
            "cut at {cut}: too many units"
        );
        for (i, (key, res)) in salvaged.iter().enumerate() {
            assert_eq!(key, &units[i].0, "cut at {cut}: key {i} diverged");
            assert_eq!(res, &units[i].1, "cut at {cut}: result {i} diverged");
        }
        // Salvage accounting: valid + torn covers the cut exactly.
        assert_eq!(report.records, salvaged.len(), "cut at {cut}");
        assert_eq!(
            report.valid_bytes + report.torn_bytes,
            cut as u64,
            "cut at {cut}: salvage ranges must partition the file"
        );
        if report.is_clean() {
            boundary_cuts += 1;
        }
        // Salvaging then replaying must be clean and keep the prefix.
        UnitJournal::salvage(&cut_path).unwrap_or_else(|e| panic!("salvage at {cut}: {e}"));
        let (again, clean) =
            UnitJournal::replay(&cut_path).unwrap_or_else(|e| panic!("re-replay at {cut}: {e}"));
        assert!(clean.is_clean(), "cut at {cut}: salvage left a torn tail");
        assert_eq!(
            again.len(),
            salvaged.len(),
            "cut at {cut}: salvage lost units"
        );
    }
    // Clean cuts are exactly the record boundaries: one per record,
    // plus the empty file.
    assert_eq!(
        boundary_cuts,
        units.len() + 1,
        "unexpected number of clean truncation points"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
