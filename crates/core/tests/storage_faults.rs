//! Disk-fault torture for the storage layer's durability claims.
//!
//! Three invariants, each under a seeded fault schedule:
//!
//! * **Fully-old-or-fully-new** — an ENOSPC or crash-before-rename
//!   during `put_atomic` (checkpoint save) leaves the previous bytes
//!   intact, never a torn file; at worst a stray `.tmp` remains.
//! * **Torn appends never corrupt** — a short journal append either
//!   retries to exactly one clean copy (the `Store` truncate-on-retry
//!   protocol) or, when the failure is terminal, leaves a tail the
//!   journal codec detects and salvages.
//! * **Faults cost retries, never answers** — a checkpoint saved
//!   through a flaky store is byte-identical to one saved cleanly,
//!   and loads back equal.

use sbgp_asgraph::gen::{generate, GenParams};
use sbgp_asgraph::Weights;
use sbgp_core::checkpoint::{params_fingerprint, SweepCheckpoint, UnitJournal};
use sbgp_core::storage::{DiskChaosProfile, InMemory, LocalDisk, RetryPolicy, Store};
use sbgp_core::{EarlyAdopters, SimConfig, SimResult, Simulation};
use sbgp_routing::HashTieBreak;
use std::path::PathBuf;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sbgp-storefault-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A small real simulation result, so the checkpoints under torture
/// carry actual unit payloads (hex-encoded f64s and all).
fn sample_result() -> SimResult {
    let g = generate(&GenParams::new(120, 7)).graph;
    let w = Weights::with_cp_fraction(&g, 0.10);
    let cfg = SimConfig {
        theta: 0.05,
        ..SimConfig::default()
    };
    let adopters = EarlyAdopters::ContentProvidersPlusTopIsps(3).select(&g);
    Simulation::new(&g, &w, &HashTieBreak, cfg).run(&adopters)
}

/// A chaos store over the same root as `clean`, with retries disabled
/// so the first injected fault is terminal (the crash model).
fn chaos_store_at(dir: &PathBuf, spec: &str) -> Store {
    Store::with_chaos(LocalDisk::new(dir), DiskChaosProfile::parse(spec).unwrap())
        .with_retry(RetryPolicy::none())
}

#[test]
fn enospc_during_checkpoint_save_leaves_fully_old_bytes() {
    let dir = tmp_dir("enospc");
    let clean = Store::localdisk(&dir);

    let mut ckpt = SweepCheckpoint::new(params_fingerprint(&["v=1"]));
    ckpt.insert("unit-a".to_string(), sample_result());
    ckpt.save_to(&clean, "sweep.ckpt").unwrap();
    let old = clean.get("sweep.ckpt").unwrap().unwrap();

    // Every write now hits ENOSPC; the save must fail as transient
    // (a retrying caller would eventually succeed on a real disk) and
    // must not have touched the published file.
    let full = chaos_store_at(&dir, "enospc=1,seed=1");
    ckpt.insert("unit-b".to_string(), sample_result());
    let err = ckpt.save_to(&full, "sweep.ckpt").unwrap_err();
    assert!(err.to_string().contains("ENOSPC"), "{err}");
    assert_eq!(clean.get("sweep.ckpt").unwrap().unwrap(), old);
    let reloaded = SweepCheckpoint::inspect_from(&clean, "sweep.ckpt").unwrap();
    assert_eq!(reloaded.len(), 1);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn crash_before_rename_leaves_fully_old_bytes_and_stray_tmp() {
    let dir = tmp_dir("crash");
    let clean = Store::localdisk(&dir);
    clean.put_atomic("fig9.csv", b"old,bytes\n").unwrap();

    let crashing = chaos_store_at(&dir, "crash=1,seed=2");
    crashing.put_atomic("fig9.csv", b"new,bytes\n").unwrap_err();

    // The published file is fully old; the orphaned tmp holds the
    // aborted write, exactly as a real crash between write and rename
    // leaves the directory.
    assert_eq!(
        clean.get("fig9.csv").unwrap().as_deref(),
        Some(&b"old,bytes\n"[..])
    );
    assert!(dir.join("fig9.csv.tmp").exists());
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn torn_appends_retry_to_exactly_one_copy() {
    // Frequent torn/short writes, with the default retry budget: the
    // truncate-before-retry protocol must land each record exactly
    // once, in order, with no torn prefixes in between.
    let profile = DiskChaosProfile::parse("torn=0.2,seed=5").unwrap();
    let store = Store::with_chaos(InMemory::default(), profile);
    let record = b"0123456789";
    for _ in 0..40 {
        store.append_durable("j", record).unwrap();
    }
    let got = store.get("j").unwrap().unwrap();
    assert_eq!(got.len(), 400);
    assert!(got.chunks(10).all(|c| c == record));
    let ledger = store.fault_ledger().unwrap();
    assert!(ledger.total() > 0, "schedule never fired — test is vacuous");
    let _ = ledger;
}

#[test]
fn terminal_torn_journal_append_is_detected_and_salvaged() {
    let dir = tmp_dir("torn-journal");
    let clean = Store::localdisk(&dir);
    let mut journal = UnitJournal::open_in(&clean, "s.journal").unwrap();
    journal.append_lease("unit-a", "pid 1").unwrap();
    let good_len = clean.len("s.journal").unwrap().unwrap();

    // A torn append with no retry budget — the crash model: half a
    // record lands and the process dies.
    let torn = chaos_store_at(&dir, "torn=1,seed=6");
    let mut dying = UnitJournal::open_in(&torn, "s.journal").unwrap();
    dying.append_lease("unit-b", "pid 1").unwrap_err();
    assert!(clean.len("s.journal").unwrap().unwrap() > good_len);

    // Replay detects the torn tail and keeps the complete record;
    // salvage truncates back to it.
    let (records, report) = UnitJournal::replay_records_in(&clean, "s.journal").unwrap();
    assert_eq!(records.len(), 1);
    assert!(!report.is_clean());
    assert_eq!(report.valid_bytes, good_len);
    let salvaged = UnitJournal::salvage_in(&clean, "s.journal").unwrap();
    assert_eq!(salvaged.records, 1);
    assert_eq!(clean.len("s.journal").unwrap().unwrap(), good_len);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn flaky_store_saves_byte_identical_checkpoints() {
    let dir = tmp_dir("flaky");
    let result = sample_result();

    let mut ckpt = SweepCheckpoint::new(params_fingerprint(&["v=2"]));
    ckpt.insert("unit-a".to_string(), result);

    let clean = Store::localdisk(&dir);
    ckpt.save_to(&clean, "clean.ckpt").unwrap();

    // Aggressive-but-survivable schedule with the default retry
    // budget: EIO, detected read corruption, and torn writes on every
    // category of operation.
    let profile = DiskChaosProfile::parse("eio=0.2,corrupt=0.15,torn=0.2,seed=9").unwrap();
    let flaky = Store::with_chaos(LocalDisk::new(&dir), profile);
    ckpt.save_to(&flaky, "flaky.ckpt").unwrap();

    let a = clean.get("clean.ckpt").unwrap().unwrap();
    let b = clean.get("flaky.ckpt").unwrap().unwrap();
    assert_eq!(a, b, "injected faults changed the persisted bytes");
    assert!(flaky.fault_ledger().unwrap().total() > 0);

    // And the flaky copy loads back equal through the flaky store too.
    let back = SweepCheckpoint::inspect_from(&flaky, "flaky.ckpt").unwrap();
    assert_eq!(back.len(), 1);
    let _ = std::fs::remove_dir_all(dir);
}
