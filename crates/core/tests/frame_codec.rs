//! Split-at-every-byte property suite for the frame codec.
//!
//! A TCP link (or a pipe) can deliver a frame in arbitrarily ragged
//! pieces: partial reads at any byte boundary, `Interrupted` errors
//! between them, and hard EOFs anywhere — including inside the 4-byte
//! length prefix. The contract under test, mirroring `torn_write.rs`
//! for the persistence layer:
//!
//! * however the bytes are split, [`read_frame`] reassembles exactly
//!   the frames that were written, in order;
//! * a stream cut at **any** byte yields the complete-frame prefix
//!   followed by either a clean EOF (cut on a frame boundary) or a
//!   typed [`SuperviseError::TornFrame`] — never a panic, never a
//!   wrong frame, never a hang.

use sbgp_core::supervise::{read_frame, write_frame, SuperviseError};
use std::io::{self, Read};

/// A transport that serves `data` but refuses to let any read cross
/// the byte boundary at `split`, and returns `Interrupted` before
/// every successful read — the raggedest legal delivery of the bytes.
struct SplitReader<'a> {
    data: &'a [u8],
    pos: usize,
    split: usize,
    interrupt_next: bool,
}

impl<'a> SplitReader<'a> {
    fn new(data: &'a [u8], split: usize) -> Self {
        SplitReader {
            data,
            pos: 0,
            split,
            interrupt_next: true,
        }
    }
}

impl Read for SplitReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.interrupt_next {
            self.interrupt_next = false;
            return Err(io::Error::new(io::ErrorKind::Interrupted, "try again"));
        }
        self.interrupt_next = true;
        if self.pos >= self.data.len() {
            return Ok(0);
        }
        // Stop short at the split boundary: the frame arrives torn in
        // two partial reads.
        let end = if self.pos < self.split {
            self.split.min(self.data.len())
        } else {
            self.data.len()
        };
        let n = buf.len().min(end - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// A transport that delivers exactly one byte per read.
struct OneByteReader<'a>(&'a [u8]);

impl Read for OneByteReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.0.is_empty() || buf.is_empty() {
            return Ok(0);
        }
        buf[0] = self.0[0];
        self.0 = &self.0[1..];
        Ok(1)
    }
}

/// Frames with the shapes the supervisor actually ships: short control
/// messages, multibyte UTF-8, and a payload larger than one pipe read.
fn sample_payloads() -> Vec<String> {
    vec![
        "heartbeat".to_string(),
        "unit\nkey 3d7468657461e280a6\nstatus θ→✓ rés".to_string(),
        "x".repeat(3_000),
    ]
}

/// Encode the sample payloads into one contiguous byte stream.
fn wire(payloads: &[String]) -> Vec<u8> {
    let mut buf = Vec::new();
    for p in payloads {
        write_frame(&mut buf, p).expect("write_frame into a Vec");
    }
    buf
}

#[test]
fn frames_survive_every_split_point() {
    let payloads = sample_payloads();
    let bytes = wire(&payloads);
    for split in 0..=bytes.len() {
        let mut r = SplitReader::new(&bytes, split);
        for (i, want) in payloads.iter().enumerate() {
            let got = read_frame(&mut r)
                .unwrap_or_else(|e| panic!("split at {split}: frame {i} errored: {e}"))
                .unwrap_or_else(|| panic!("split at {split}: frame {i} hit EOF"));
            assert_eq!(&got, want, "split at {split}: frame {i} corrupted");
        }
        let end =
            read_frame(&mut r).unwrap_or_else(|e| panic!("split at {split}: EOF errored: {e}"));
        assert_eq!(end, None, "split at {split}: phantom frame after the end");
    }
}

#[test]
fn one_byte_reads_reassemble_exactly() {
    let payloads = sample_payloads();
    let bytes = wire(&payloads);
    let mut r = OneByteReader(&bytes);
    for want in &payloads {
        let got = read_frame(&mut r)
            .expect("frame reads")
            .expect("frame present");
        assert_eq!(&got, want);
    }
    assert_eq!(read_frame(&mut r).expect("clean EOF"), None);
}

#[test]
fn truncation_at_every_byte_is_a_clean_eof_or_a_torn_frame() {
    let payloads = sample_payloads();
    let bytes = wire(&payloads);

    // Frame boundaries, for deciding what each cut must produce.
    let mut boundaries = vec![0usize];
    {
        let mut acc = Vec::new();
        for p in &payloads {
            write_frame(&mut acc, p).unwrap();
            boundaries.push(acc.len());
        }
    }

    let mut clean_cuts = 0usize;
    for cut in 0..=bytes.len() {
        // Complete frames fully inside the cut must replay exactly.
        let whole = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
        let mut r = OneByteReader(&bytes[..cut]);
        for (i, want) in payloads.iter().take(whole).enumerate() {
            let got = read_frame(&mut r)
                .unwrap_or_else(|e| panic!("cut at {cut}: frame {i} errored: {e}"))
                .unwrap_or_else(|| panic!("cut at {cut}: frame {i} hit EOF"));
            assert_eq!(&got, want, "cut at {cut}: frame {i} corrupted");
        }
        // The remainder is a clean EOF exactly on a frame boundary,
        // a typed TornFrame anywhere else — mid-length-prefix included.
        match read_frame(&mut r) {
            Ok(None) => {
                clean_cuts += 1;
                assert!(
                    boundaries.contains(&cut),
                    "cut at {cut}: clean EOF off a frame boundary"
                );
            }
            Ok(Some(f)) => panic!("cut at {cut}: phantom frame {f:?}"),
            Err(SuperviseError::TornFrame { context }) => {
                assert!(
                    !context.is_empty(),
                    "cut at {cut}: torn frame without context"
                );
                assert!(
                    !boundaries.contains(&cut),
                    "cut at {cut}: frame boundary reported torn"
                );
            }
            Err(other) => panic!("cut at {cut}: wrong error type: {other}"),
        }
    }
    // One clean cut per frame, plus the empty stream.
    assert_eq!(clean_cuts, payloads.len() + 1, "boundary census diverged");
}
