//! Seeded synthetic Internet-like topology generator.
//!
//! This is the repo's substitute for the paper's empirical Cyclops +
//! IXP AS graph (Dec 9 2010; 36,964 ASes), which is proprietary
//! measurement data. The generator is built to land in the structural
//! regimes the paper's results depend on and states explicitly:
//!
//! * ≈85% of ASes are stubs, ≈15% ISPs (Section 2.2.1);
//! * extreme degree skew: a small Tier-1 clique at the top, a transit
//!   hierarchy below it, preferential attachment of stubs;
//! * widespread but far-from-universal stub multihoming, which creates
//!   the small tiebreak sets (mean ≈ 1.2) of Figure 10;
//! * five designated content providers with moderate transit degree
//!   (their rich peering is added separately by [`crate::augment`],
//!   mirroring Appendix D);
//! * an IXP substrate: a subset of ASes are IXP members, giving the
//!   peering mesh and the augmentation its attachment points.
//!
//! Generation is fully deterministic given [`GenParams::seed`].

use crate::builder::AsGraphBuilder;
use crate::graph::AsGraph;
use crate::ids::AsId;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Parameters for [`generate`]. Start from [`GenParams::new`] and
/// override fields as needed; all fields have paper-shaped defaults.
#[derive(Clone, Debug)]
pub struct GenParams {
    /// Total number of ASes (minimum 50).
    pub n_ases: usize,
    /// Size of the Tier-1 clique. `0` selects `clamp(n/500, 5, 12)`.
    pub n_tier1: usize,
    /// Number of designated content providers (the paper uses 5).
    pub n_cps: usize,
    /// Fraction of ASes that are stubs (paper: ≈0.85).
    pub stub_fraction: f64,
    /// Probability a stub is multi-homed (≥2 providers); a third
    /// provider is added with 0.3× this probability.
    pub stub_multihoming: f64,
    /// Fraction of non-Tier-1 ISPs in the mid tier (direct Tier-1
    /// customers).
    pub mid_tier_fraction: f64,
    /// Expected number of peer links each mid-tier ISP initiates.
    pub mid_tier_peering: usize,
    /// Number of IXP clusters.
    pub ixp_count: usize,
    /// Fraction of all ASes that are IXP members.
    pub ixp_member_fraction: f64,
    /// Expected number of IXP peer links each member ISP initiates
    /// inside its cluster.
    pub ixp_peering: usize,
    /// RNG seed; generation is deterministic given the seed.
    pub seed: u64,
}

impl GenParams {
    /// Paper-shaped defaults for an `n_ases`-node topology.
    pub fn new(n_ases: usize, seed: u64) -> Self {
        GenParams {
            n_ases,
            n_tier1: 0,
            n_cps: 5,
            stub_fraction: 0.85,
            stub_multihoming: 0.45,
            mid_tier_fraction: 0.25,
            mid_tier_peering: 3,
            ixp_count: 4,
            ixp_member_fraction: 0.13,
            ixp_peering: 2,
            seed,
        }
    }

    /// A ~200-node topology for unit tests.
    pub fn tiny(seed: u64) -> Self {
        GenParams::new(200, seed)
    }

    /// A ~1,000-node topology for integration tests and benches.
    pub fn small(seed: u64) -> Self {
        GenParams::new(1_000, seed)
    }

    /// The paper's full-Internet scale: 36,964 ASes, matching the
    /// Cyclops (Nov. 2010) + IXP graph the published figures ran on.
    ///
    /// Published statistics pinned here: total AS count (36,964), the
    /// ≈85% stub share (the paper reports 31,529 stubs, i.e. a 0.853
    /// stub fraction), a Tier-1 clique of 13 (the conventional
    /// full-mesh transit-free core of that era), and the paper's five
    /// designated content providers. The remaining knobs keep the
    /// [`GenParams::new`] defaults — the generator is a synthetic
    /// stand-in, not the proprietary measurement graph, so only the
    /// published aggregates are matched. Empirical serial-2 dumps can
    /// be loaded via [`crate::io`] instead.
    pub fn paper_scale(seed: u64) -> Self {
        GenParams {
            n_tier1: 13,
            stub_fraction: 0.853,
            ..GenParams::new(36_964, seed)
        }
    }

    fn tier1_count(&self) -> usize {
        if self.n_tier1 > 0 {
            self.n_tier1
        } else {
            (self.n_ases / 500).clamp(5, 12)
        }
    }
}

/// Output of [`generate`]: the topology plus the IXP membership list
/// that [`crate::augment::augment_cp_peering`] attaches to.
#[derive(Clone, Debug)]
pub struct Generated {
    /// The validated topology.
    pub graph: AsGraph,
    /// ASes present at IXPs (mix of ISPs and stubs).
    pub ixp_members: Vec<AsId>,
}

/// Edge accumulator that silently deduplicates; the generator's random
/// draws may propose the same pair twice.
struct EdgeAcc {
    set: HashSet<(AsId, AsId)>,
    cp: Vec<(AsId, AsId)>,
    peer: Vec<(AsId, AsId)>,
}

impl EdgeAcc {
    fn new() -> Self {
        EdgeAcc {
            set: HashSet::new(),
            cp: Vec::new(),
            peer: Vec::new(),
        }
    }

    fn key(a: AsId, b: AsId) -> (AsId, AsId) {
        if a < b {
            (a, b)
        } else {
            (b, a)
        }
    }

    fn add_pc(&mut self, provider: AsId, customer: AsId) -> bool {
        if provider == customer || !self.set.insert(Self::key(provider, customer)) {
            return false;
        }
        self.cp.push((provider, customer));
        true
    }

    fn add_peer(&mut self, a: AsId, b: AsId) -> bool {
        if a == b || !self.set.insert(Self::key(a, b)) {
            return false;
        }
        self.peer.push((a, b));
        true
    }
}

/// Generate a synthetic AS-level topology.
///
/// # Panics
/// Panics if `n_ases < 50` or the tier sizes don't fit; see
/// [`generate_checked`] for the non-panicking variant.
pub fn generate(params: &GenParams) -> Generated {
    match generate_checked(params) {
        Ok(g) => g,
        Err(e) => panic!("invalid generator parameters: {e}"),
    }
}

/// [`generate`] with typed errors instead of panics: invalid sizes
/// surface as [`GraphError::InvalidParam`] and a generator bug that
/// produces an unvalidatable graph surfaces as the underlying
/// [`GraphError`] rather than aborting the process.
pub fn generate_checked(params: &GenParams) -> Result<Generated, crate::GraphError> {
    if params.n_ases < 50 {
        return Err(crate::GraphError::InvalidParam {
            param: "n_ases",
            message: format!("need at least 50 ASes, got {}", params.n_ases),
        });
    }
    if params.n_ases > crate::MAX_GRAPH_NODES {
        return Err(crate::GraphError::InvalidParam {
            param: "n_ases",
            message: format!(
                "{} ASes exceeds the supported maximum of {}; the routing \
                 layer stores node ids and path lengths as u16",
                params.n_ases,
                crate::MAX_GRAPH_NODES
            ),
        });
    }
    let mut rng = StdRng::seed_from_u64(params.seed);

    let n = params.n_ases;
    let n_t1 = params.tier1_count();
    let n_cps = params.n_cps;
    let n_stubs = ((n as f64) * params.stub_fraction).round() as usize;
    let n_isps_total = n - n_stubs - n_cps;
    if n_isps_total <= n_t1 + 2 {
        return Err(crate::GraphError::InvalidParam {
            param: "n_ases",
            message: format!(
                "tier sizes don't fit: {n} ASes, {n_t1} tier1, {n_cps} CPs, {n_stubs} stubs"
            ),
        });
    }
    let n_mid = (((n_isps_total - n_t1) as f64) * params.mid_tier_fraction).round() as usize;
    let n_low = n_isps_total - n_t1 - n_mid;

    // Node index layout: [tier1][mid][low][cps][stubs].
    let t1_range = 0..n_t1;
    let mid_range = n_t1..n_t1 + n_mid;
    let low_range = n_t1 + n_mid..n_t1 + n_mid + n_low;
    let cp_range = n_isps_total..n_isps_total + n_cps;
    let stub_range = n_isps_total + n_cps..n;

    let ids: Vec<AsId> = (0..n as u32).map(AsId).collect();
    let mut acc = EdgeAcc::new();

    // Tier-1 full peering clique.
    for i in t1_range.clone() {
        for j in i + 1..n_t1 {
            acc.add_peer(ids[i], ids[j]);
        }
    }

    // Mid tier: 2–3 Tier-1 providers each, plus a few lateral peers.
    for i in mid_range.clone() {
        let n_prov = 2 + usize::from(rng.gen_bool(0.4));
        let mut provs: Vec<usize> = t1_range.clone().collect();
        provs.shuffle(&mut rng);
        for &p in provs.iter().take(n_prov.min(n_t1)) {
            acc.add_pc(ids[p], ids[i]);
        }
    }
    for i in mid_range.clone() {
        for _ in 0..params.mid_tier_peering {
            let j = rng.gen_range(mid_range.clone());
            if j != i {
                acc.add_peer(ids[i], ids[j]);
            }
        }
    }

    // Zipf rank-weighted sampler over a contiguous index range:
    // candidate at rank r is drawn ∝ (r+1)^-α. Deterministic
    // attractiveness by rank keeps the degree skew controllable.
    let zipf_cum = |range: std::ops::Range<usize>, alpha: f64| -> Vec<f64> {
        let mut cum = Vec::with_capacity(range.len());
        let mut running = 0.0f64;
        for (r, _) in range.enumerate() {
            running += ((r + 1) as f64).powf(-alpha);
            cum.push(running);
        }
        cum
    };
    let sample_zipf = |rng: &mut StdRng, base: usize, cum: &[f64]| -> AsId {
        let total = *cum.last().expect("non-empty sampler");
        let x = rng.gen_range(0.0..total);
        let k = cum.partition_point(|&c| c < x);
        AsId((base + k.min(cum.len() - 1)) as u32)
    };
    let mid_cum = zipf_cum(mid_range.clone(), 0.8);
    let low_cum = zipf_cum(low_range.clone(), 0.8);
    let t1_cum = zipf_cum(t1_range.clone(), 0.5);

    // Low-tier ISPs: 1–3 *mid-tier* providers, Zipf-weighted. Keeping
    // providers within one tier gives multihomed customers equal-length
    // alternative paths — the tiebreak sets where all of the paper's
    // competition happens (Section 6.6).
    for i in low_range.clone() {
        let n_prov = 1 + usize::from(rng.gen_bool(0.6)) + usize::from(rng.gen_bool(0.15));
        let mut chosen: Vec<AsId> = Vec::with_capacity(n_prov);
        let mut guard = 0;
        while chosen.len() < n_prov && guard < 64 {
            guard += 1;
            let cand = sample_zipf(&mut rng, mid_range.start, &mid_cum);
            if !chosen.contains(&cand) {
                chosen.push(cand);
            }
        }
        for p in chosen {
            acc.add_pc(p, ids[i]);
        }
    }

    // CPs: a couple of Tier-1 transit providers plus one mid-tier and
    // one low-tier provider (CPs buy transit broadly), and a handful
    // of mid-tier peers (rich IXP peering comes from `augment`, per
    // Appendix D). The low-tier provider matters beyond realism: a
    // heavy source reachable through an ISP's *customer* cone is what
    // creates the Figure 13 turn-off incentives (Section 7.3) — the
    // secure path enters the ISP via its provider, the plain-tiebreak
    // alternative climbs in through a customer.
    for i in cp_range.clone() {
        let mut t1s: Vec<usize> = t1_range.clone().collect();
        t1s.shuffle(&mut rng);
        for &p in t1s.iter().take(2) {
            acc.add_pc(ids[p], ids[i]);
        }
        if n_mid > 0 {
            let m = rng.gen_range(mid_range.clone());
            acc.add_pc(ids[m], ids[i]);
            for _ in 0..3 {
                let q = rng.gen_range(mid_range.clone());
                acc.add_peer(ids[i], ids[q]);
            }
        }
        let l = sample_zipf(&mut rng, low_range.start, &low_cum);
        acc.add_pc(l, ids[i]);
    }

    // Stubs attach tier-stratified: pick a provider *tier* first, then
    // Zipf-sample providers within that tier, and draw any extra
    // (multihoming) providers from the SAME tier. Same-tier providers
    // sit at the same depth in the hierarchy, so a multihomed stub's
    // alternative paths have equal length — producing the multi-path
    // tiebreak sets (≈20% of pairs, Figure 10) through which secure
    // early adopters exert market pressure. Zipf weighting inside each
    // tier reproduces the skew where most ISPs have very few stub
    // customers (Section 2.2.1) while the head accumulates hundreds.
    //
    // Guarantee every low-tier ISP one (single-homed) stub customer
    // first, so it keeps its ISP classification; this also seeds the
    // paper's population of ISPs that never face competition — and so
    // never deploy — because they serve only single-homed stubs
    // (Section 5.3).
    let mut stub_iter = stub_range.clone();
    for low in low_range.clone() {
        if let Some(s) = stub_iter.next() {
            acc.add_pc(ids[low], ids[s]);
        }
    }
    for i in stub_iter {
        let n_prov = 1
            + usize::from(rng.gen_bool(params.stub_multihoming))
            + usize::from(rng.gen_bool(params.stub_multihoming * 0.3));
        // A slice of multihomed stubs buys transit across tiers (one
        // mid + one low provider). Their two paths differ in length
        // for most sources, so they add little tiebreak competition —
        // but they create the valley-free "up through a customer"
        // detours behind Figure 13's turn-off incentives.
        if n_prov >= 2 && n_mid > 0 && rng.gen_bool(0.15) {
            let m = sample_zipf(&mut rng, mid_range.start, &mid_cum);
            let l = sample_zipf(&mut rng, low_range.start, &low_cum);
            if m != l {
                acc.add_pc(m, ids[i]);
                acc.add_pc(l, ids[i]);
                continue;
            }
        }
        let tier: f64 = rng.gen_range(0.0..1.0);
        let (base, cum) = if tier < 0.12 {
            (t1_range.start, &t1_cum)
        } else if tier < 0.50 {
            (mid_range.start, &mid_cum)
        } else {
            (low_range.start, &low_cum)
        };
        let mut chosen: Vec<AsId> = Vec::with_capacity(n_prov);
        let mut guard = 0;
        while chosen.len() < n_prov.min(cum.len()) && guard < 64 {
            guard += 1;
            let cand = sample_zipf(&mut rng, base, cum);
            if !chosen.contains(&cand) {
                chosen.push(cand);
            }
        }
        for p in chosen {
            acc.add_pc(p, ids[i]);
        }
    }

    // IXP membership and intra-IXP peering among member ISPs. IXP
    // membership skews heavily toward transit networks in practice, so
    // every mid- and low-tier ISP is a member and random stubs fill
    // the remainder of the membership quota. This matters for the
    // Appendix D augmentation: CPs peering with (mostly) ISPs is what
    // pulls their mean path lengths toward ≈2 hops (Table 3).
    let n_members = ((n as f64) * params.ixp_member_fraction).round() as usize;
    let mut ixp_members: Vec<AsId> = mid_range
        .clone()
        .chain(low_range.clone())
        .map(|i| ids[i])
        .collect();
    let mut stub_candidates: Vec<AsId> = stub_range.clone().map(|i| ids[i]).collect();
    stub_candidates.shuffle(&mut rng);
    for &s in stub_candidates
        .iter()
        .take(n_members.saturating_sub(ixp_members.len()))
    {
        ixp_members.push(s);
    }
    let n_clusters = params.ixp_count.max(1);
    let mut clusters: Vec<Vec<AsId>> = vec![Vec::new(); n_clusters];
    for &m in &ixp_members {
        clusters[rng.gen_range(0..n_clusters)].push(m);
    }
    let isp_upper = n_isps_total; // indices below this are ISPs
    for cluster in &clusters {
        let isps: Vec<AsId> = cluster
            .iter()
            .copied()
            .filter(|m| (m.index()) < isp_upper)
            .collect();
        if isps.len() < 2 {
            continue;
        }
        for &a in &isps {
            for _ in 0..params.ixp_peering {
                let b = isps[rng.gen_range(0..isps.len())];
                acc.add_peer(a, b);
            }
        }
    }

    // Freeze. Providers always have lower index than customers by
    // construction, so GR1 validation cannot fail; edge dedup already
    // happened in the accumulator.
    let mut b = AsGraphBuilder::with_capacity(n, acc.cp.len() + acc.peer.len());
    for i in 0..n {
        // AS numbers offset so they are visibly distinct from indices.
        b.add_node(10_000 + i as u32);
    }
    for &(p, c) in &acc.cp {
        b.add_provider_customer(p, c)
            .expect("accumulator deduplicates");
    }
    for &(x, y) in &acc.peer {
        b.add_peer_peer(x, y).expect("accumulator deduplicates");
    }
    for i in cp_range {
        b.mark_content_provider(ids[i]);
    }
    let graph = b.build()?;

    Ok(Generated { graph, ixp_members })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    #[test]
    fn deterministic_given_seed() {
        let a = generate(&GenParams::tiny(7));
        let b = generate(&GenParams::tiny(7));
        assert_eq!(a.graph.num_edges(), b.graph.num_edges());
        let ea: Vec<_> = a.graph.edges().collect();
        let eb: Vec<_> = b.graph.edges().collect();
        assert_eq!(ea, eb);
        assert_eq!(a.ixp_members, b.ixp_members);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&GenParams::tiny(1));
        let b = generate(&GenParams::tiny(2));
        let ea: Vec<_> = a.graph.edges().collect();
        let eb: Vec<_> = b.graph.edges().collect();
        assert_ne!(ea, eb);
    }

    #[test]
    fn class_shares_match_paper_shape() {
        let g = generate(&GenParams::small(42)).graph;
        let s = stats::summarize(&g);
        assert_eq!(s.ases, 1_000);
        assert_eq!(s.cps, 5);
        let stub_share = s.stubs as f64 / s.ases as f64;
        assert!(
            (0.80..=0.90).contains(&stub_share),
            "stub share {stub_share}"
        );
    }

    #[test]
    fn stub_multihoming_in_range() {
        let g = generate(&GenParams::small(42)).graph;
        let mh = stats::multihomed_stub_fraction(&g);
        assert!((0.35..=0.65).contains(&mh), "multihoming {mh}");
    }

    #[test]
    fn degree_skew_present() {
        let g = generate(&GenParams::small(42)).graph;
        let top = stats::top_k_by_degree(&g, crate::AsClass::Isp, 1);
        let dmax = g.degree(top[0]);
        let mean = 2.0 * g.num_edges() as f64 / g.len() as f64;
        assert!(
            dmax as f64 > 10.0 * mean,
            "no skew: max {dmax}, mean {mean}"
        );
    }

    #[test]
    fn most_isps_have_few_stub_customers() {
        // Paper: 80% of ISPs have < 7 stub customers (on 36K ASes /
        // 6K ISPs). Downscaled graphs carry more stubs per ISP (the
        // stub:ISP ratio is fixed but the Zipf head is relatively
        // fatter), so the expected majority share is lower here and
        // approaches the paper's as n grows.
        let g = generate(&GenParams::small(42)).graph;
        let frac = stats::isp_fraction_with_at_most_stub_customers(&g, 6);
        assert!(frac > 0.5, "fraction with ≤6 stub customers: {frac}");
        let g4 = generate(&GenParams::new(4_000, 42)).graph;
        let frac4 = stats::isp_fraction_with_at_most_stub_customers(&g4, 6);
        assert!(
            frac4 > frac - 0.05,
            "skew should not worsen with scale: {frac4} vs {frac}"
        );
    }

    #[test]
    fn connected_to_tier1() {
        // Every node must reach a Tier-1 via provider edges (no orphans).
        let g = generate(&GenParams::tiny(3)).graph;
        for node in g.nodes() {
            let mut cur = node;
            let mut hops = 0;
            while !g.providers(cur).is_empty() {
                cur = g.providers(cur)[0];
                hops += 1;
                assert!(hops < 20, "provider chain too long at {node}");
            }
            // Top of every provider chain is in the Tier-1 clique
            // (index < tier1 count) or is itself a Tier-1.
            assert!(
                cur.index() < 12 || g.providers(node).is_empty(),
                "chain from {node} tops out at non-tier1 {cur}"
            );
        }
    }

    #[test]
    fn ixp_members_nonempty_and_valid() {
        let gen = generate(&GenParams::small(9));
        assert!(!gen.ixp_members.is_empty());
        for &m in &gen.ixp_members {
            assert!(m.index() < gen.graph.len());
        }
    }

    #[test]
    #[should_panic(expected = "at least 50")]
    fn rejects_tiny_n() {
        let _ = generate(&GenParams::new(10, 0));
    }

    #[test]
    fn paper_scale_pins_published_aggregates() {
        let p = GenParams::paper_scale(42);
        assert_eq!(p.n_ases, 36_964);
        assert_eq!(p.n_tier1, 13);
        assert_eq!(p.n_cps, 5);
        assert!((p.stub_fraction - 0.853).abs() < 1e-9);
    }

    #[test]
    fn rejects_oversized_n() {
        let err = generate_checked(&GenParams::new(crate::MAX_GRAPH_NODES + 1, 0)).unwrap_err();
        match err {
            crate::GraphError::InvalidParam { param, message } => {
                assert_eq!(param, "n_ases");
                assert!(message.contains("u16"), "{message}");
            }
            other => panic!("expected InvalidParam, got {other}"),
        }
    }
}
