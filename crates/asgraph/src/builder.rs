//! Construction and validation of [`AsGraph`]s.

use crate::error::GraphError;
use crate::graph::AsGraph;
use crate::ids::{AsClass, AsId, Relationship};
use std::collections::{HashMap, HashSet};

/// Builder (and validator) for [`AsGraph`].
///
/// Nodes are declared with [`add_node`](Self::add_node) (carrying an AS
/// number label), edges with
/// [`add_provider_customer`](Self::add_provider_customer) /
/// [`add_peer_peer`](Self::add_peer_peer), and content providers are
/// designated with [`mark_content_provider`](Self::mark_content_provider).
///
/// [`build`](Self::build) performs the model's structural validation:
///
/// * every edge references declared nodes, no self-loops, at most one
///   logical edge per node pair;
/// * the customer–provider digraph is acyclic (Gao–Rexford GR1), which
///   the routing model of Appendix A requires for BGP convergence
///   (Lemma G.1);
/// * classification: a node with no customers that is not a designated
///   CP is a [`AsClass::Stub`]; every other non-CP node is an
///   [`AsClass::Isp`].
#[derive(Default, Debug)]
pub struct AsGraphBuilder {
    asns: Vec<u32>,
    asn_index: HashMap<u32, AsId>,
    /// (provider, customer) pairs.
    cp_edges: Vec<(AsId, AsId)>,
    /// unordered peer pairs.
    peer_edges: Vec<(AsId, AsId)>,
    edge_set: HashSet<(AsId, AsId)>,
    cps: Vec<AsId>,
}

impl AsGraphBuilder {
    /// Fresh, empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder pre-sized for `nodes` nodes and `edges` edges.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        Self {
            asns: Vec::with_capacity(nodes),
            asn_index: HashMap::with_capacity(nodes),
            cp_edges: Vec::with_capacity(edges),
            peer_edges: Vec::with_capacity(edges / 4),
            edge_set: HashSet::with_capacity(edges),
            cps: Vec::new(),
        }
    }

    /// Number of nodes declared so far.
    pub fn len(&self) -> usize {
        self.asns.len()
    }

    /// Whether no nodes have been declared.
    pub fn is_empty(&self) -> bool {
        self.asns.is_empty()
    }

    /// Declare a node carrying AS-number label `asn`; returns its dense id.
    ///
    /// Declaring the same AS number twice is reported at
    /// [`build`](Self::build) time as [`GraphError::DuplicateAsn`].
    pub fn add_node(&mut self, asn: u32) -> AsId {
        let id = AsId(self.asns.len() as u32);
        self.asns.push(asn);
        self.asn_index.entry(asn).or_insert(id);
        id
    }

    /// Declare `count` nodes with consecutive AS numbers starting at
    /// `first_asn`; returns the id of the first.
    pub fn add_nodes(&mut self, first_asn: u32, count: usize) -> AsId {
        let first = AsId(self.asns.len() as u32);
        for k in 0..count {
            self.add_node(first_asn + k as u32);
        }
        first
    }

    /// Look up a previously declared node by AS number.
    pub fn node_by_asn(&self, asn: u32) -> Option<AsId> {
        self.asn_index.get(&asn).copied()
    }

    /// Add a customer–provider edge: `provider` sells transit to
    /// `customer`.
    pub fn add_provider_customer(
        &mut self,
        provider: AsId,
        customer: AsId,
    ) -> Result<(), GraphError> {
        self.check_edge(provider, customer)?;
        self.cp_edges.push((provider, customer));
        Ok(())
    }

    /// Add a settlement-free peer–peer edge.
    pub fn add_peer_peer(&mut self, a: AsId, b: AsId) -> Result<(), GraphError> {
        self.check_edge(a, b)?;
        self.peer_edges.push((a, b));
        Ok(())
    }

    /// Designate a node as one of the model's content providers.
    pub fn mark_content_provider(&mut self, n: AsId) {
        if !self.cps.contains(&n) {
            self.cps.push(n);
        }
    }

    fn check_edge(&mut self, a: AsId, b: AsId) -> Result<(), GraphError> {
        let n = self.asns.len() as u32;
        if a.0 >= n {
            return Err(GraphError::UnknownNode(a));
        }
        if b.0 >= n {
            return Err(GraphError::UnknownNode(b));
        }
        if a == b {
            return Err(GraphError::SelfLoop(a));
        }
        let key = if a < b { (a, b) } else { (b, a) };
        if !self.edge_set.insert(key) {
            return Err(GraphError::DuplicateEdge(a, b));
        }
        Ok(())
    }

    /// Validate and freeze into an immutable [`AsGraph`].
    pub fn build(self) -> Result<AsGraph, GraphError> {
        let n = self.asns.len();

        // Duplicate AS numbers.
        if self.asn_index.len() != n {
            let mut seen = HashSet::with_capacity(n);
            for &asn in &self.asns {
                if !seen.insert(asn) {
                    return Err(GraphError::DuplicateAsn(asn));
                }
            }
        }

        // GR1: the provider→customer digraph must be acyclic.
        check_acyclic(n, &self.cp_edges)?;

        // Bucket neighbors by relationship.
        let mut customers: Vec<Vec<AsId>> = vec![Vec::new(); n];
        let mut peers: Vec<Vec<AsId>> = vec![Vec::new(); n];
        let mut providers: Vec<Vec<AsId>> = vec![Vec::new(); n];
        for &(p, c) in &self.cp_edges {
            customers[p.index()].push(c);
            providers[c.index()].push(p);
        }
        for &(a, b) in &self.peer_edges {
            peers[a.index()].push(b);
            peers[b.index()].push(a);
        }

        // Classify.
        let cp_set: HashSet<AsId> = self.cps.iter().copied().collect();
        let class: Vec<AsClass> = (0..n)
            .map(|i| {
                if cp_set.contains(&AsId(i as u32)) {
                    AsClass::ContentProvider
                } else if customers[i].is_empty() {
                    AsClass::Stub
                } else {
                    AsClass::Isp
                }
            })
            .collect();

        // Freeze to CSR with groups sorted by id.
        let total: usize = self.cp_edges.len() * 2 + self.peer_edges.len() * 2;
        let mut adj = Vec::with_capacity(total);
        let mut offsets = Vec::with_capacity(n + 1);
        let mut peer_start = Vec::with_capacity(n);
        let mut prov_start = Vec::with_capacity(n);
        for i in 0..n {
            offsets.push(adj.len() as u32);
            customers[i].sort_unstable();
            peers[i].sort_unstable();
            providers[i].sort_unstable();
            adj.extend_from_slice(&customers[i]);
            peer_start.push(adj.len() as u32);
            adj.extend_from_slice(&peers[i]);
            prov_start.push(adj.len() as u32);
            adj.extend_from_slice(&providers[i]);
        }
        offsets.push(adj.len() as u32);

        Ok(AsGraph {
            asns: self.asns,
            class,
            adj,
            offsets,
            peer_start,
            prov_start,
            asn_index: self.asn_index,
            content_providers: self.cps,
        })
    }
}

/// Kahn's algorithm over the provider→customer digraph; any remaining
/// node after peeling indicates a customer–provider cycle.
fn check_acyclic(n: usize, cp_edges: &[(AsId, AsId)]) -> Result<(), GraphError> {
    let mut indeg = vec![0u32; n]; // number of providers
    let mut out: Vec<Vec<AsId>> = vec![Vec::new(); n];
    for &(p, c) in cp_edges {
        indeg[c.index()] += 1;
        out[p.index()].push(c);
    }
    let mut queue: Vec<AsId> = (0..n as u32)
        .map(AsId)
        .filter(|v| indeg[v.index()] == 0)
        .collect();
    let mut seen = 0usize;
    while let Some(v) = queue.pop() {
        seen += 1;
        for &c in &out[v.index()] {
            indeg[c.index()] -= 1;
            if indeg[c.index()] == 0 {
                queue.push(c);
            }
        }
    }
    if seen != n {
        let culprit = (0..n as u32)
            .map(AsId)
            .find(|v| indeg[v.index()] > 0)
            .expect("cycle implies a node with positive in-degree");
        return Err(GraphError::CustomerProviderCycle(culprit));
    }
    Ok(())
}

/// Rebuild a graph from an existing one plus extra peer edges, keeping
/// node ids, AS numbers, and CP designations stable.
///
/// Used by the Appendix D augmentation; edges that already exist are
/// skipped silently (the augmentation draws random IXP members and
/// collisions are expected).
pub(crate) fn rebuild_with_extra_peers(
    g: &AsGraph,
    extra_peers: &[(AsId, AsId)],
) -> Result<AsGraph, GraphError> {
    let mut b = AsGraphBuilder::with_capacity(g.len(), g.num_edges() + extra_peers.len());
    for i in 0..g.len() {
        b.add_node(g.asns[i]);
    }
    for (a, bb, rel) in g.edges() {
        match rel {
            Relationship::Customer => b.add_provider_customer(a, bb)?,
            Relationship::Peer => b.add_peer_peer(a, bb)?,
            Relationship::Provider => unreachable!("edges() never emits provider orientation"),
        }
    }
    for &(a, c) in extra_peers {
        // Ignore duplicates: drawing an existing neighbor is not an error here.
        let _ = b.add_peer_peer(a, c);
    }
    for &cp in g.content_providers() {
        b.mark_content_provider(cp);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_self_loop() {
        let mut b = AsGraphBuilder::new();
        let a = b.add_node(1);
        assert_eq!(b.add_peer_peer(a, a), Err(GraphError::SelfLoop(a)));
    }

    #[test]
    fn rejects_unknown_node() {
        let mut b = AsGraphBuilder::new();
        let a = b.add_node(1);
        let ghost = AsId(9);
        assert_eq!(
            b.add_provider_customer(a, ghost),
            Err(GraphError::UnknownNode(ghost))
        );
    }

    #[test]
    fn rejects_duplicate_edge_even_across_kinds() {
        let mut b = AsGraphBuilder::new();
        let a = b.add_node(1);
        let c = b.add_node(2);
        b.add_provider_customer(a, c).unwrap();
        assert_eq!(b.add_peer_peer(c, a), Err(GraphError::DuplicateEdge(c, a)));
    }

    #[test]
    fn rejects_customer_provider_cycle() {
        let mut b = AsGraphBuilder::new();
        let a = b.add_node(1);
        let c = b.add_node(2);
        let d = b.add_node(3);
        b.add_provider_customer(a, c).unwrap();
        b.add_provider_customer(c, d).unwrap();
        b.add_provider_customer(d, a).unwrap();
        assert!(matches!(
            b.build(),
            Err(GraphError::CustomerProviderCycle(_))
        ));
    }

    #[test]
    fn rejects_duplicate_asn() {
        let mut b = AsGraphBuilder::new();
        b.add_node(7);
        b.add_node(7);
        assert_eq!(b.build().unwrap_err(), GraphError::DuplicateAsn(7));
    }

    #[test]
    fn peer_only_graph_is_fine() {
        let mut b = AsGraphBuilder::new();
        let a = b.add_node(1);
        let c = b.add_node(2);
        b.add_peer_peer(a, c).unwrap();
        let g = b.build().unwrap();
        // Both are stubs: neither has customers.
        assert_eq!(g.stubs().count(), 2);
    }

    #[test]
    fn cp_designation_overrides_stub() {
        let mut b = AsGraphBuilder::new();
        let p = b.add_node(1);
        let cp = b.add_node(2);
        b.add_provider_customer(p, cp).unwrap();
        b.mark_content_provider(cp);
        let g = b.build().unwrap();
        assert_eq!(g.class(cp), crate::AsClass::ContentProvider);
        assert_eq!(g.content_providers(), &[cp]);
    }

    #[test]
    fn add_nodes_bulk() {
        let mut b = AsGraphBuilder::new();
        let first = b.add_nodes(100, 5);
        assert_eq!(first, AsId(0));
        assert_eq!(b.len(), 5);
        assert_eq!(b.node_by_asn(104), Some(AsId(4)));
    }

    #[test]
    fn rebuild_with_extra_peers_keeps_structure() {
        let mut b = AsGraphBuilder::new();
        let p = b.add_node(1);
        let c1 = b.add_node(2);
        let c2 = b.add_node(3);
        b.add_provider_customer(p, c1).unwrap();
        b.add_provider_customer(p, c2).unwrap();
        let g = b.build().unwrap();
        let g2 = rebuild_with_extra_peers(&g, &[(c1, c2)]).unwrap();
        assert_eq!(g2.num_edges(), 3);
        assert_eq!(g2.relationship(c1, c2), Some(crate::Relationship::Peer));
        assert_eq!(g2.asn(c1), 2);
        // Duplicate extra edge is ignored.
        let g3 = rebuild_with_extra_peers(&g2, &[(c1, c2)]).unwrap();
        assert_eq!(g3.num_edges(), 3);
    }
}
