//! Core identifier and enum types for the AS graph.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Dense node identifier: an index into the [`AsGraph`](crate::AsGraph)
/// arrays, *not* an AS number. The AS number label of a node is
/// available via [`AsGraph::asn`](crate::AsGraph::asn).
///
/// Using dense indices keeps the simulator's hot arrays (path lengths,
/// utilities, secure bits) flat and cache-friendly, which matters for
/// the `O(0.15·t·|V|³)` per-round workload of Appendix C.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AsId(pub u32);

impl AsId {
    /// The node index as a `usize`, for array indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for AsId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AsId({})", self.0)
    }
}

impl fmt::Display for AsId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The paper's three-way classification of ASes (Section 3.1).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash, Serialize, Deserialize)]
pub enum AsClass {
    /// An AS with no customers that is not a designated content
    /// provider. Stubs are ≈85% of the Internet, originate unit
    /// traffic, and run *simplex* S\*BGP once any of their providers is
    /// secure (Section 2.2.1).
    Stub,
    /// A transit provider: earns revenue from customer traffic and is
    /// the only kind of AS that makes autonomous deployment decisions
    /// in the model (Section 3.2).
    Isp,
    /// One of the designated content providers (the paper uses Google,
    /// Facebook, Microsoft, Akamai, Limelight). CPs originate an `x`
    /// fraction of all Internet traffic and only deploy S\*BGP if
    /// seeded as early adopters.
    ContentProvider,
}

impl AsClass {
    /// Short human-readable label (used by the experiment harness).
    pub fn label(self) -> &'static str {
        match self {
            AsClass::Stub => "stub",
            AsClass::Isp => "ISP",
            AsClass::ContentProvider => "CP",
        }
    }
}

/// A business relationship, expressed from the perspective of the node
/// whose adjacency list is being read (the standard Gao–Rexford model,
/// Figure 1 of the paper).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash, Serialize, Deserialize)]
pub enum Relationship {
    /// The neighbor is *my customer* (it pays me to carry its traffic).
    Customer,
    /// The neighbor is *my peer* (settlement-free transit of each
    /// other's customer traffic).
    Peer,
    /// The neighbor is *my provider* (I pay it).
    Provider,
}

impl Relationship {
    /// The same physical edge seen from the other endpoint.
    pub fn reverse(self) -> Relationship {
        match self {
            Relationship::Customer => Relationship::Provider,
            Relationship::Peer => Relationship::Peer,
            Relationship::Provider => Relationship::Customer,
        }
    }

    /// Local-preference rank in the routing model of Appendix A:
    /// customer routes (rank 0) beat peer routes (rank 1) beat provider
    /// routes (rank 2).
    pub fn preference_rank(self) -> u8 {
        match self {
            Relationship::Customer => 0,
            Relationship::Peer => 1,
            Relationship::Provider => 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reverse_is_involutive() {
        for r in [
            Relationship::Customer,
            Relationship::Peer,
            Relationship::Provider,
        ] {
            assert_eq!(r.reverse().reverse(), r);
        }
    }

    #[test]
    fn peer_is_self_reverse() {
        assert_eq!(Relationship::Peer.reverse(), Relationship::Peer);
    }

    #[test]
    fn preference_order_matches_gao_rexford() {
        assert!(Relationship::Customer.preference_rank() < Relationship::Peer.preference_rank());
        assert!(Relationship::Peer.preference_rank() < Relationship::Provider.preference_rank());
    }

    #[test]
    fn as_id_roundtrip() {
        let id = AsId(42);
        assert_eq!(id.index(), 42);
        assert_eq!(format!("{id}"), "42");
        assert_eq!(format!("{id:?}"), "AsId(42)");
    }

    #[test]
    fn class_labels() {
        assert_eq!(AsClass::Stub.label(), "stub");
        assert_eq!(AsClass::Isp.label(), "ISP");
        assert_eq!(AsClass::ContentProvider.label(), "CP");
    }
}
