//! Error type shared by graph construction and I/O.

use crate::ids::AsId;
use std::fmt;

/// Errors produced while building, validating, or parsing an AS graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge references a node index that was never declared.
    UnknownNode(AsId),
    /// An edge connects a node to itself.
    SelfLoop(AsId),
    /// The same pair of nodes was connected twice (with any
    /// relationship); the model has at most one logical edge per pair.
    DuplicateEdge(AsId, AsId),
    /// The customer–provider digraph contains a cycle, violating the
    /// Gao–Rexford GR1 condition the whole routing model rests on.
    CustomerProviderCycle(AsId),
    /// Two nodes were declared with the same AS number label.
    DuplicateAsn(u32),
    /// A parse error from the serial-2 style text reader.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// Underlying I/O failure while reading or writing a graph file.
    Io(String),
    /// A caller-supplied parameter is outside its valid domain (e.g. a
    /// probability not in `[0, 1]`, or a graph size below the
    /// generator's minimum).
    InvalidParam {
        /// The parameter's name as the caller knows it.
        param: &'static str,
        /// What was wrong with the supplied value.
        message: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownNode(n) => write!(f, "edge references unknown node {n}"),
            GraphError::SelfLoop(n) => write!(f, "self-loop on node {n}"),
            GraphError::DuplicateEdge(a, b) => {
                write!(f, "duplicate edge between nodes {a} and {b}")
            }
            GraphError::CustomerProviderCycle(n) => {
                write!(f, "customer-provider cycle through node {n} (violates GR1)")
            }
            GraphError::DuplicateAsn(asn) => write!(f, "duplicate AS number {asn}"),
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            GraphError::Io(msg) => write!(f, "i/o error: {msg}"),
            GraphError::InvalidParam { param, message } => {
                write!(f, "invalid parameter {param}: {message}")
            }
        }
    }
}

impl std::error::Error for GraphError {}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e.to_string())
    }
}
