//! # sbgp-asgraph
//!
//! AS-level Internet topology substrate for the S\*BGP deployment
//! simulator, reproducing the modeling layer of *"Let the Market Drive
//! Deployment: A Strategy for Transitioning to BGP Security"* (Gill,
//! Schapira, Goldberg — SIGCOMM 2011).
//!
//! The crate provides:
//!
//! * [`AsGraph`] — an immutable, validated AS-level graph annotated with
//!   the standard Gao–Rexford business relationships
//!   (customer–provider and peer–peer), stored in a compact CSR layout
//!   with neighbors grouped by relationship for fast policy-aware BFS.
//! * [`AsGraphBuilder`] — the only way to construct an [`AsGraph`];
//!   validates symmetry, rejects duplicate/self edges, and enforces GR1
//!   (no customer–provider cycles).
//! * [`AsClass`] — the paper's three-way node classification: *stubs*
//!   (no customers, ≈85% of the Internet), *ISPs* (transit providers),
//!   and *content providers* (the five designated CPs of Section 3.1).
//! * [`Weights`] — the paper's traffic-origination weights: every stub
//!   and ISP originates unit traffic; the CPs jointly originate an `x`
//!   fraction of all traffic (Section 3.1).
//! * [`gen`] — a seeded synthetic Internet-like topology generator (our
//!   substitute for the proprietary Cyclops + IXP measurement graph),
//!   and [`augment`] — the Appendix D CP-peering augmentation.
//! * [`io`] — a CAIDA serial-2 style text format so empirical
//!   AS-relationship files can be dropped in.
//! * [`stats`] — degree/edge/class summaries used by Tables 2 and 4.
//!
//! # Example
//!
//! ```
//! use sbgp_asgraph::gen::{generate, GenParams};
//! use sbgp_asgraph::{stats, Weights};
//!
//! let generated = generate(&GenParams::new(300, 7));
//! let graph = &generated.graph;
//! let summary = stats::summarize(graph);
//! assert_eq!(summary.ases, 300);
//! assert!(summary.stubs as f64 / summary.ases as f64 > 0.8); // ≈85% stubs
//!
//! // The five CPs jointly originate 20% of all traffic.
//! let weights = Weights::with_cp_fraction(graph, 0.20);
//! let cp_total: f64 = graph.content_providers().iter().map(|&c| weights.get(c)).sum();
//! assert!((cp_total / weights.total() - 0.20).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod error;
mod graph;
mod ids;
mod weights;

pub mod augment;
pub mod fault;
pub mod gen;
pub mod io;
pub mod stats;

pub use builder::AsGraphBuilder;
pub use error::GraphError;
pub use graph::{AsGraph, EdgeIter};
pub use ids::{AsClass, AsId, Relationship};
pub use weights::Weights;

/// Largest node count the simulation pipeline supports.
///
/// The routing layer stores path lengths and (in the compressed
/// frozen-context atlas) node ids as `u16`, reserving `u16::MAX` for
/// the unreachable sentinel and `u16::MAX - 1` for the atlas's
/// spilled-tiebreak marker — so node ids must stay below
/// `u16::MAX - 1`. The paper's full 36,964-AS Internet graph fits
/// comfortably. Graph producers ([`gen::generate_checked`], the
/// [`io`] loaders) reject larger graphs with a typed
/// [`GraphError::InvalidParam`] instead of letting the routing layer
/// panic later.
pub const MAX_GRAPH_NODES: usize = u16::MAX as usize - 1;
