//! Topology summaries used by Tables 2 and 4 of the paper and by the
//! generator's self-validation.

use crate::graph::AsGraph;
use crate::ids::{AsClass, AsId, Relationship};

/// Headline counts for a topology (the shape of the paper's Table 2).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GraphSummary {
    /// Total ASes.
    pub ases: usize,
    /// Stub count.
    pub stubs: usize,
    /// ISP count.
    pub isps: usize,
    /// Content-provider count.
    pub cps: usize,
    /// Peer–peer edge count.
    pub peering_edges: usize,
    /// Customer–provider edge count.
    pub customer_provider_edges: usize,
}

/// Compute a [`GraphSummary`].
pub fn summarize(g: &AsGraph) -> GraphSummary {
    let mut peering = 0usize;
    let mut cp = 0usize;
    for (_, _, rel) in g.edges() {
        match rel {
            Relationship::Peer => peering += 1,
            Relationship::Customer => cp += 1,
            Relationship::Provider => unreachable!(),
        }
    }
    GraphSummary {
        ases: g.len(),
        stubs: g.stubs().count(),
        isps: g.isps().count(),
        cps: g.content_providers().len(),
        peering_edges: peering,
        customer_provider_edges: cp,
    }
}

/// The `k` highest-degree nodes of a class (ties broken by lower id),
/// e.g. "top five Tier 1 ASes in terms of degree" (Section 5).
pub fn top_k_by_degree(g: &AsGraph, class: AsClass, k: usize) -> Vec<AsId> {
    let mut nodes: Vec<AsId> = g.nodes().filter(|&n| g.class(n) == class).collect();
    nodes.sort_by_key(|&n| (std::cmp::Reverse(g.degree(n)), n));
    nodes.truncate(k);
    nodes
}

/// Degree histogram bucketed by powers of two: `buckets[i]` counts
/// nodes with degree in `[2^i, 2^(i+1))` (degree 0 lands in bucket 0).
pub fn degree_histogram(g: &AsGraph) -> Vec<usize> {
    let mut buckets = Vec::new();
    for n in g.nodes() {
        let d = g.degree(n);
        let b = usize::BITS as usize - d.max(1).leading_zeros() as usize - 1;
        if buckets.len() <= b {
            buckets.resize(b + 1, 0);
        }
        buckets[b] += 1;
    }
    buckets
}

/// Share of ISPs with at most `k` stub customers — the paper's "80% of
/// ISPs have fewer than 7 stub customers" observation (Section 2.2.1).
pub fn isp_fraction_with_at_most_stub_customers(g: &AsGraph, k: usize) -> f64 {
    let mut total = 0usize;
    let mut small = 0usize;
    for n in g.isps() {
        total += 1;
        if g.stub_customers_of(n).count() <= k {
            small += 1;
        }
    }
    if total == 0 {
        0.0
    } else {
        small as f64 / total as f64
    }
}

/// Fraction of stubs with two or more providers (multi-homed stubs are
/// the locus of the competition that drives deployment — Section 5.1).
pub fn multihomed_stub_fraction(g: &AsGraph) -> f64 {
    let mut total = 0usize;
    let mut multi = 0usize;
    for s in g.stubs() {
        total += 1;
        if g.providers(s).len() >= 2 {
            multi += 1;
        }
    }
    if total == 0 {
        0.0
    } else {
        multi as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::AsGraphBuilder;

    fn fixture() -> AsGraph {
        // t1 --peer-- t2 ; t1 -> isp -> {s1, s2}; t2 -> isp; t2 -> s2 (multihomed s2)
        let mut b = AsGraphBuilder::new();
        let t1 = b.add_node(1);
        let t2 = b.add_node(2);
        let isp = b.add_node(3);
        let s1 = b.add_node(4);
        let s2 = b.add_node(5);
        b.add_peer_peer(t1, t2).unwrap();
        b.add_provider_customer(t1, isp).unwrap();
        b.add_provider_customer(t2, isp).unwrap();
        b.add_provider_customer(isp, s1).unwrap();
        b.add_provider_customer(isp, s2).unwrap();
        b.add_provider_customer(t2, s2).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn summary_counts() {
        let g = fixture();
        let s = summarize(&g);
        assert_eq!(
            s,
            GraphSummary {
                ases: 5,
                stubs: 2,
                isps: 3,
                cps: 0,
                peering_edges: 1,
                customer_provider_edges: 5,
            }
        );
    }

    #[test]
    fn top_k_degree_ranking() {
        let g = fixture();
        let top = top_k_by_degree(&g, AsClass::Isp, 2);
        // isp has degree 4 (2 providers + 2 customers), t2 has degree 3.
        assert_eq!(top[0], g.node_by_asn(3).unwrap());
        assert_eq!(top[1], g.node_by_asn(2).unwrap());
    }

    #[test]
    fn histogram_covers_all_nodes() {
        let g = fixture();
        let h = degree_histogram(&g);
        assert_eq!(h.iter().sum::<usize>(), g.len());
    }

    #[test]
    fn stub_customer_share() {
        let g = fixture();
        // Every ISP has ≤ 2 stub customers.
        assert_eq!(isp_fraction_with_at_most_stub_customers(&g, 2), 1.0);
        // t1 has 0 stub customers; isp has 2; t2 has 1 → with k=0: 1/3.
        assert!((isp_fraction_with_at_most_stub_customers(&g, 0) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn multihoming_share() {
        let g = fixture();
        assert!((multihomed_stub_fraction(&g) - 0.5).abs() < 1e-12);
    }
}
