//! Text serialization in a CAIDA *serial-2*–style format.
//!
//! The format is line-oriented so that empirical AS-relationship dumps
//! can be adapted with a one-line `sed`:
//!
//! ```text
//! # free-form comments
//! <provider-asn>|<customer-asn>|-1
//! <peer-asn>|<peer-asn>|0
//! ! cp <asn>            # designate a content provider
//! ```
//!
//! Nodes are declared implicitly by appearing in an edge (or can be
//! declared alone via `<asn>||`). Round-trips preserve the topology,
//! CP designations, and AS numbers; dense ids are reassigned in
//! first-appearance order.

use crate::builder::AsGraphBuilder;
use crate::error::GraphError;
use crate::graph::AsGraph;
use crate::ids::{AsId, Relationship};
use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::path::Path;

/// Serialize `g` in serial-2 style.
pub fn write_graph<W: Write>(g: &AsGraph, out: &mut W) -> Result<(), GraphError> {
    writeln!(
        out,
        "# sbgp-asgraph serial-2 export: {} ASes, {} edges",
        g.len(),
        g.num_edges()
    )?;
    for &cp in g.content_providers() {
        writeln!(out, "! cp {}", g.asn(cp))?;
    }
    // Nodes with no edges still need declaring.
    for n in g.nodes() {
        if g.degree(n) == 0 {
            writeln!(out, "{}||", g.asn(n))?;
        }
    }
    for (a, b, rel) in g.edges() {
        match rel {
            Relationship::Customer => writeln!(out, "{}|{}|-1", g.asn(a), g.asn(b))?,
            Relationship::Peer => writeln!(out, "{}|{}|0", g.asn(a), g.asn(b))?,
            Relationship::Provider => unreachable!(),
        }
    }
    Ok(())
}

/// Parse a serial-2 style stream into a validated [`AsGraph`].
///
/// Duplicate and conflicting edge declarations are rejected with a
/// diagnostic naming both offending lines. See [`read_graph_strict`]
/// for the additional checks `repro doctor` applies.
pub fn read_graph<R: BufRead>(input: R) -> Result<AsGraph, GraphError> {
    read_graph_impl(input, false)
}

/// [`read_graph`] plus strict-mode checks for empirically sourced
/// dumps: reserved AS numbers (`0` and `u32::MAX`, per RFC 7607 /
/// RFC 6793 last-ASN reservation) are rejected, as are files declaring
/// an implausible `u16::MAX`-or-more distinct ASes.
pub fn read_graph_strict<R: BufRead>(input: R) -> Result<AsGraph, GraphError> {
    read_graph_impl(input, true)
}

/// One edge declaration, normalized so that equivalent restatements
/// compare equal: provider→customer keeps its orientation; peer edges
/// are keyed low-ASN-first.
#[derive(Clone, Copy, PartialEq, Eq)]
struct EdgeDecl {
    a: u32,
    b: u32,
    code: i8,
}

impl std::fmt::Display for EdgeDecl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}|{}|{}", self.a, self.b, self.code)
    }
}

fn read_graph_impl<R: BufRead>(input: R, strict: bool) -> Result<AsGraph, GraphError> {
    let mut b = AsGraphBuilder::new();
    let mut by_asn: HashMap<u32, AsId> = HashMap::new();
    let mut cps: Vec<(u32, usize)> = Vec::new();
    // Unordered ASN pair -> (first declaration line, normalized form).
    let mut seen_edges: HashMap<(u32, u32), (usize, EdgeDecl)> = HashMap::new();

    let check_asn = |asn: u32, lineno: usize| -> Result<(), GraphError> {
        if strict && (asn == 0 || asn == u32::MAX) {
            return Err(GraphError::Parse {
                line: lineno,
                message: format!("reserved AS number {asn} rejected in strict mode"),
            });
        }
        Ok(())
    };
    let intern = |b: &mut AsGraphBuilder, by_asn: &mut HashMap<u32, AsId>, asn: u32| -> AsId {
        *by_asn.entry(asn).or_insert_with(|| b.add_node(asn))
    };

    for (idx, line) in input.lines().enumerate() {
        let line = line?;
        let lineno = idx + 1;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        if let Some(rest) = t.strip_prefix('!') {
            let mut parts = rest.split_whitespace();
            match (parts.next(), parts.next()) {
                (Some("cp"), Some(asn)) => {
                    let asn: u32 = asn.parse().map_err(|_| GraphError::Parse {
                        line: lineno,
                        message: format!("bad AS number in CP directive: {asn:?}"),
                    })?;
                    check_asn(asn, lineno)?;
                    cps.push((asn, lineno));
                }
                _ => {
                    return Err(GraphError::Parse {
                        line: lineno,
                        message: format!("unknown directive: {t:?}"),
                    })
                }
            }
            continue;
        }
        let fields: Vec<&str> = t.split('|').collect();
        if fields.len() != 3 {
            return Err(GraphError::Parse {
                line: lineno,
                message: format!("expected 3 |-separated fields, got {}", fields.len()),
            });
        }
        let a_asn: u32 = fields[0].trim().parse().map_err(|_| GraphError::Parse {
            line: lineno,
            message: format!("bad AS number {:?}", fields[0]),
        })?;
        check_asn(a_asn, lineno)?;
        if fields[1].trim().is_empty() && fields[2].trim().is_empty() {
            intern(&mut b, &mut by_asn, a_asn);
            continue;
        }
        let c_asn: u32 = fields[1].trim().parse().map_err(|_| GraphError::Parse {
            line: lineno,
            message: format!("bad AS number {:?}", fields[1]),
        })?;
        check_asn(c_asn, lineno)?;
        let code: i8 = match fields[2].trim() {
            "-1" => -1,
            "0" => 0,
            other => {
                return Err(GraphError::Parse {
                    line: lineno,
                    message: format!("bad relationship code {other:?} (want -1 or 0)"),
                })
            }
        };
        let decl = if code == -1 {
            EdgeDecl {
                a: a_asn,
                b: c_asn,
                code,
            }
        } else {
            EdgeDecl {
                a: a_asn.min(c_asn),
                b: a_asn.max(c_asn),
                code,
            }
        };
        let key = (a_asn.min(c_asn), a_asn.max(c_asn));
        if let Some(&(first_line, first_decl)) = seen_edges.get(&key) {
            let message = if first_decl == decl {
                format!("duplicate edge declaration {decl}: already declared at line {first_line}")
            } else {
                format!(
                    "conflicting edge declaration {decl}: AS pair declared as {first_decl} at line {first_line}"
                )
            };
            return Err(GraphError::Parse {
                line: lineno,
                message,
            });
        }
        seen_edges.insert(key, (lineno, decl));
        let a = intern(&mut b, &mut by_asn, a_asn);
        let c = intern(&mut b, &mut by_asn, c_asn);
        if strict && by_asn.len() >= u16::MAX as usize {
            return Err(GraphError::Parse {
                line: lineno,
                message: format!(
                    "strict mode: file declares {} or more distinct ASes (implausible dump)",
                    u16::MAX
                ),
            });
        }
        match code {
            -1 => b.add_provider_customer(a, c)?,
            _ => b.add_peer_peer(a, c)?,
        }
    }
    if by_asn.len() > crate::MAX_GRAPH_NODES {
        return Err(GraphError::InvalidParam {
            param: "nodes",
            message: format!(
                "file declares {} distinct ASes, more than the supported {}; \
                 the routing layer stores node ids and path lengths as u16",
                by_asn.len(),
                crate::MAX_GRAPH_NODES
            ),
        });
    }
    for (asn, lineno) in cps {
        let id = by_asn.get(&asn).copied().ok_or(GraphError::Parse {
            line: lineno,
            message: format!("CP directive references unknown AS {asn}"),
        })?;
        b.mark_content_provider(id);
    }
    b.build()
}

/// Write a graph to a filesystem path.
pub fn save_to_path<P: AsRef<Path>>(g: &AsGraph, path: P) -> Result<(), GraphError> {
    let file = std::fs::File::create(path)?;
    let mut w = std::io::BufWriter::new(file);
    write_graph(g, &mut w)
}

/// Read a graph from a filesystem path.
pub fn load_from_path<P: AsRef<Path>>(path: P) -> Result<AsGraph, GraphError> {
    let file = std::fs::File::open(path)?;
    read_graph(std::io::BufReader::new(file))
}

/// Read a graph from a filesystem path with [`read_graph_strict`]
/// checks — what `repro doctor` runs over graph files.
pub fn load_from_path_strict<P: AsRef<Path>>(path: P) -> Result<AsGraph, GraphError> {
    let file = std::fs::File::open(path)?;
    read_graph_strict(std::io::BufReader::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenParams};

    fn roundtrip(g: &AsGraph) -> AsGraph {
        let mut buf = Vec::new();
        write_graph(g, &mut buf).unwrap();
        read_graph(std::io::Cursor::new(buf)).unwrap()
    }

    #[test]
    fn roundtrip_preserves_topology() {
        let g = generate(&GenParams::tiny(21)).graph;
        let g2 = roundtrip(&g);
        assert_eq!(g.len(), g2.len());
        assert_eq!(g.num_edges(), g2.num_edges());
        // Compare relationship multiset keyed by ASN pairs.
        let norm = |g: &AsGraph| {
            let mut v: Vec<(u32, u32, u8)> = g
                .edges()
                .map(|(a, b, r)| {
                    let (x, y) = (g.asn(a), g.asn(b));
                    match r {
                        // Peer edges are undirected; emission order depends
                        // on dense ids, which reloading reassigns.
                        Relationship::Peer => (x.min(y), x.max(y), r.preference_rank()),
                        _ => (x, y, r.preference_rank()),
                    }
                })
                .collect();
            v.sort_unstable();
            v
        };
        assert_eq!(norm(&g), norm(&g2));
        let cps: Vec<u32> = g.content_providers().iter().map(|&c| g.asn(c)).collect();
        let cps2: Vec<u32> = g2.content_providers().iter().map(|&c| g2.asn(c)).collect();
        assert_eq!(cps, cps2);
    }

    #[test]
    fn parses_hand_written_file() {
        let text = "# demo\n! cp 30\n10|20|-1\n20|30|-1\n10|40|0\n99||\n";
        let g = read_graph(std::io::Cursor::new(text)).unwrap();
        assert_eq!(g.len(), 5);
        assert_eq!(g.num_edges(), 3);
        let n10 = g.node_by_asn(10).unwrap();
        let n20 = g.node_by_asn(20).unwrap();
        assert_eq!(g.relationship(n10, n20), Some(Relationship::Customer));
        assert_eq!(g.content_providers().len(), 1);
        assert_eq!(g.asn(g.content_providers()[0]), 30);
        assert_eq!(g.degree(g.node_by_asn(99).unwrap()), 0);
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in ["10|20", "x|20|-1", "10|20|7", "! nonsense 3"] {
            let err = read_graph(std::io::Cursor::new(bad)).unwrap_err();
            assert!(matches!(err, GraphError::Parse { .. }), "{bad:?} -> {err}");
        }
    }

    #[test]
    fn rejects_unknown_cp_with_its_line() {
        let err = read_graph(std::io::Cursor::new("1|2|-1\n! cp 5\n")).unwrap_err();
        match err {
            GraphError::Parse { line, message } => {
                assert_eq!(line, 2, "error points at the directive's own line");
                assert!(message.contains("unknown AS 5"), "{message}");
            }
            other => panic!("want Parse, got {other}"),
        }
    }

    #[test]
    fn rejects_duplicate_edge_with_both_lines() {
        let err = read_graph(std::io::Cursor::new("# hdr\n10|20|-1\n10|20|-1\n")).unwrap_err();
        match err {
            GraphError::Parse { line, message } => {
                assert_eq!(line, 3);
                assert!(message.contains("duplicate edge"), "{message}");
                assert!(message.contains("line 2"), "{message}");
            }
            other => panic!("want Parse, got {other}"),
        }
        // A restated peer edge is a duplicate regardless of order.
        let err = read_graph(std::io::Cursor::new("10|20|0\n20|10|0\n")).unwrap_err();
        assert!(err.to_string().contains("duplicate edge"), "{err}");
    }

    #[test]
    fn rejects_conflicting_edge_with_both_lines() {
        // Same pair, different relationship.
        let err = read_graph(std::io::Cursor::new("10|20|-1\n20|10|0\n")).unwrap_err();
        match err {
            GraphError::Parse { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("conflicting edge"), "{message}");
                assert!(message.contains("10|20|-1"), "{message}");
                assert!(message.contains("line 1"), "{message}");
            }
            other => panic!("want Parse, got {other}"),
        }
        // Same pair, opposite provider/customer orientation.
        let err = read_graph(std::io::Cursor::new("10|20|-1\n20|10|-1\n")).unwrap_err();
        assert!(err.to_string().contains("conflicting edge"), "{err}");
    }

    #[test]
    fn strict_rejects_reserved_asns_lenient_allows() {
        for bad in ["0|20|-1\n", "10|4294967295|0\n", "! cp 0\n0||\n"] {
            let err = read_graph_strict(std::io::Cursor::new(bad)).unwrap_err();
            assert!(err.to_string().contains("reserved AS number"), "{err}");
        }
        // The lenient parser (used for generated graphs) keeps accepting.
        assert!(read_graph(std::io::Cursor::new("0|20|-1\n")).is_ok());
    }

    #[test]
    fn strict_accepts_clean_generated_graphs() {
        let g = generate(&GenParams::tiny(9)).graph;
        let mut buf = Vec::new();
        write_graph(&g, &mut buf).unwrap();
        let g2 = read_graph_strict(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(g.len(), g2.len());
        assert_eq!(g.num_edges(), g2.num_edges());
    }

    #[test]
    fn rejects_oversized_files() {
        // One more AS than the u16 id space supports.
        let mut text = String::new();
        for asn in 1..=(crate::MAX_GRAPH_NODES as u32 + 1) {
            text.push_str(&format!("{asn}||\n"));
        }
        let err = read_graph(std::io::Cursor::new(text)).unwrap_err();
        match err {
            GraphError::InvalidParam { param, message } => {
                assert_eq!(param, "nodes");
                assert!(message.contains("u16"), "{message}");
            }
            other => panic!("expected InvalidParam, got {other}"),
        }
    }

    #[test]
    fn save_and_load_paths() {
        let g = generate(&GenParams::tiny(3)).graph;
        let dir = std::env::temp_dir().join("sbgp_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.txt");
        save_to_path(&g, &path).unwrap();
        let g2 = load_from_path(&path).unwrap();
        assert_eq!(g.len(), g2.len());
        std::fs::remove_file(&path).ok();
    }
}
