//! Text serialization in a CAIDA *serial-2*–style format.
//!
//! The format is line-oriented so that empirical AS-relationship dumps
//! can be adapted with a one-line `sed`:
//!
//! ```text
//! # free-form comments
//! <provider-asn>|<customer-asn>|-1
//! <peer-asn>|<peer-asn>|0
//! ! cp <asn>            # designate a content provider
//! ```
//!
//! Nodes are declared implicitly by appearing in an edge (or can be
//! declared alone via `<asn>||`). Round-trips preserve the topology,
//! CP designations, and AS numbers; dense ids are reassigned in
//! first-appearance order.

use crate::builder::AsGraphBuilder;
use crate::error::GraphError;
use crate::graph::AsGraph;
use crate::ids::{AsId, Relationship};
use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::path::Path;

/// Serialize `g` in serial-2 style.
pub fn write_graph<W: Write>(g: &AsGraph, out: &mut W) -> Result<(), GraphError> {
    writeln!(
        out,
        "# sbgp-asgraph serial-2 export: {} ASes, {} edges",
        g.len(),
        g.num_edges()
    )?;
    for &cp in g.content_providers() {
        writeln!(out, "! cp {}", g.asn(cp))?;
    }
    // Nodes with no edges still need declaring.
    for n in g.nodes() {
        if g.degree(n) == 0 {
            writeln!(out, "{}||", g.asn(n))?;
        }
    }
    for (a, b, rel) in g.edges() {
        match rel {
            Relationship::Customer => writeln!(out, "{}|{}|-1", g.asn(a), g.asn(b))?,
            Relationship::Peer => writeln!(out, "{}|{}|0", g.asn(a), g.asn(b))?,
            Relationship::Provider => unreachable!(),
        }
    }
    Ok(())
}

/// Parse a serial-2 style stream into a validated [`AsGraph`].
pub fn read_graph<R: BufRead>(input: R) -> Result<AsGraph, GraphError> {
    let mut b = AsGraphBuilder::new();
    let mut by_asn: HashMap<u32, AsId> = HashMap::new();
    let mut cps: Vec<u32> = Vec::new();

    let intern = |b: &mut AsGraphBuilder, by_asn: &mut HashMap<u32, AsId>, asn: u32| -> AsId {
        *by_asn.entry(asn).or_insert_with(|| b.add_node(asn))
    };

    for (idx, line) in input.lines().enumerate() {
        let line = line?;
        let lineno = idx + 1;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        if let Some(rest) = t.strip_prefix('!') {
            let mut parts = rest.split_whitespace();
            match (parts.next(), parts.next()) {
                (Some("cp"), Some(asn)) => {
                    let asn: u32 = asn.parse().map_err(|_| GraphError::Parse {
                        line: lineno,
                        message: format!("bad AS number in CP directive: {asn:?}"),
                    })?;
                    cps.push(asn);
                }
                _ => {
                    return Err(GraphError::Parse {
                        line: lineno,
                        message: format!("unknown directive: {t:?}"),
                    })
                }
            }
            continue;
        }
        let fields: Vec<&str> = t.split('|').collect();
        if fields.len() != 3 {
            return Err(GraphError::Parse {
                line: lineno,
                message: format!("expected 3 |-separated fields, got {}", fields.len()),
            });
        }
        let a: u32 = fields[0].trim().parse().map_err(|_| GraphError::Parse {
            line: lineno,
            message: format!("bad AS number {:?}", fields[0]),
        })?;
        if fields[1].trim().is_empty() && fields[2].trim().is_empty() {
            intern(&mut b, &mut by_asn, a);
            continue;
        }
        let c: u32 = fields[1].trim().parse().map_err(|_| GraphError::Parse {
            line: lineno,
            message: format!("bad AS number {:?}", fields[1]),
        })?;
        let a = intern(&mut b, &mut by_asn, a);
        let c = intern(&mut b, &mut by_asn, c);
        match fields[2].trim() {
            "-1" => b.add_provider_customer(a, c)?,
            "0" => b.add_peer_peer(a, c)?,
            other => {
                return Err(GraphError::Parse {
                    line: lineno,
                    message: format!("bad relationship code {other:?} (want -1 or 0)"),
                })
            }
        }
    }
    for asn in cps {
        let id = by_asn.get(&asn).copied().ok_or(GraphError::Parse {
            line: 0,
            message: format!("CP directive references unknown AS {asn}"),
        })?;
        b.mark_content_provider(id);
    }
    b.build()
}

/// Write a graph to a filesystem path.
pub fn save_to_path<P: AsRef<Path>>(g: &AsGraph, path: P) -> Result<(), GraphError> {
    let file = std::fs::File::create(path)?;
    let mut w = std::io::BufWriter::new(file);
    write_graph(g, &mut w)
}

/// Read a graph from a filesystem path.
pub fn load_from_path<P: AsRef<Path>>(path: P) -> Result<AsGraph, GraphError> {
    let file = std::fs::File::open(path)?;
    read_graph(std::io::BufReader::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenParams};

    fn roundtrip(g: &AsGraph) -> AsGraph {
        let mut buf = Vec::new();
        write_graph(g, &mut buf).unwrap();
        read_graph(std::io::Cursor::new(buf)).unwrap()
    }

    #[test]
    fn roundtrip_preserves_topology() {
        let g = generate(&GenParams::tiny(21)).graph;
        let g2 = roundtrip(&g);
        assert_eq!(g.len(), g2.len());
        assert_eq!(g.num_edges(), g2.num_edges());
        // Compare relationship multiset keyed by ASN pairs.
        let norm = |g: &AsGraph| {
            let mut v: Vec<(u32, u32, u8)> = g
                .edges()
                .map(|(a, b, r)| {
                    let (x, y) = (g.asn(a), g.asn(b));
                    match r {
                        // Peer edges are undirected; emission order depends
                        // on dense ids, which reloading reassigns.
                        Relationship::Peer => (x.min(y), x.max(y), r.preference_rank()),
                        _ => (x, y, r.preference_rank()),
                    }
                })
                .collect();
            v.sort_unstable();
            v
        };
        assert_eq!(norm(&g), norm(&g2));
        let cps: Vec<u32> = g.content_providers().iter().map(|&c| g.asn(c)).collect();
        let cps2: Vec<u32> = g2.content_providers().iter().map(|&c| g2.asn(c)).collect();
        assert_eq!(cps, cps2);
    }

    #[test]
    fn parses_hand_written_file() {
        let text = "# demo\n! cp 30\n10|20|-1\n20|30|-1\n10|40|0\n99||\n";
        let g = read_graph(std::io::Cursor::new(text)).unwrap();
        assert_eq!(g.len(), 5);
        assert_eq!(g.num_edges(), 3);
        let n10 = g.node_by_asn(10).unwrap();
        let n20 = g.node_by_asn(20).unwrap();
        assert_eq!(g.relationship(n10, n20), Some(Relationship::Customer));
        assert_eq!(g.content_providers().len(), 1);
        assert_eq!(g.asn(g.content_providers()[0]), 30);
        assert_eq!(g.degree(g.node_by_asn(99).unwrap()), 0);
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in ["10|20", "x|20|-1", "10|20|7", "! nonsense 3"] {
            let err = read_graph(std::io::Cursor::new(bad)).unwrap_err();
            assert!(matches!(err, GraphError::Parse { .. }), "{bad:?} -> {err}");
        }
    }

    #[test]
    fn rejects_unknown_cp() {
        let err = read_graph(std::io::Cursor::new("! cp 5\n1|2|-1\n")).unwrap_err();
        assert!(matches!(err, GraphError::Parse { .. }));
    }

    #[test]
    fn save_and_load_paths() {
        let g = generate(&GenParams::tiny(3)).graph;
        let dir = std::env::temp_dir().join("sbgp_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.txt");
        save_to_path(&g, &path).unwrap();
        let g2 = load_from_path(&path).unwrap();
        assert_eq!(g.len(), g2.len());
        std::fs::remove_file(&path).ok();
    }
}
