//! Appendix D: the "augmented" AS graph.
//!
//! Published AS-level topologies have poor visibility into the peering
//! edges of large content providers (they peer at IXPs and those links
//! are invisible to route collectors). Appendix D compensates by
//! connecting the five CPs to 80% of the ASes present at IXPs, which
//! drops CP mean path lengths from ≈2.7–3.5 hops to ≈2.1–2.2 (Table 3)
//! and raises CP degrees above the largest Tier-1s (Table 4).
//!
//! [`augment_cp_peering`] performs the same construction on our
//! synthetic graphs: each designated CP gains peer edges to a random
//! `fraction` of the IXP membership list produced by the generator.

use crate::builder::rebuild_with_extra_peers;
use crate::error::GraphError;
use crate::graph::AsGraph;
use crate::ids::AsId;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Build the augmented graph: every designated CP peers with a random
/// `fraction` of `ixp_members` (the paper uses 0.8). Existing edges and
/// self-pairs are skipped. Node ids, AS numbers, and CP designations
/// are preserved, so ids remain valid across the base/augmented pair.
///
/// Returns [`GraphError::InvalidParam`] if `fraction` is outside
/// `[0, 1]`.
pub fn augment_cp_peering(
    g: &AsGraph,
    ixp_members: &[AsId],
    fraction: f64,
    seed: u64,
) -> Result<AsGraph, GraphError> {
    if !(0.0..=1.0).contains(&fraction) {
        return Err(GraphError::InvalidParam {
            param: "fraction",
            message: format!("must be in [0, 1], got {fraction}"),
        });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut extra: Vec<(AsId, AsId)> = Vec::new();
    let take = ((ixp_members.len() as f64) * fraction).round() as usize;
    for &cp in g.content_providers() {
        let mut members = ixp_members.to_vec();
        members.shuffle(&mut rng);
        for &m in members.iter().take(take) {
            if m != cp && !g.are_adjacent(cp, m) {
                extra.push((cp, m));
            }
        }
    }
    rebuild_with_extra_peers(g, &extra)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenParams};
    use crate::Relationship;

    #[test]
    fn augmentation_raises_cp_degree() {
        let gen = generate(&GenParams::small(11));
        let aug = augment_cp_peering(&gen.graph, &gen.ixp_members, 0.8, 99).unwrap();
        for &cp in gen.graph.content_providers() {
            let before = gen.graph.degree(cp);
            let after = aug.degree(cp);
            assert!(
                after > before + gen.ixp_members.len() / 2,
                "cp {cp}: {before} -> {after}"
            );
        }
    }

    #[test]
    fn augmentation_only_adds_peer_edges() {
        let gen = generate(&GenParams::tiny(5));
        let aug = augment_cp_peering(&gen.graph, &gen.ixp_members, 0.8, 1).unwrap();
        let base_cp = gen
            .graph
            .edges()
            .filter(|(_, _, r)| *r == Relationship::Customer)
            .count();
        let aug_cp = aug
            .edges()
            .filter(|(_, _, r)| *r == Relationship::Customer)
            .count();
        assert_eq!(base_cp, aug_cp);
        assert!(aug.num_edges() > gen.graph.num_edges());
    }

    #[test]
    fn node_identity_preserved() {
        let gen = generate(&GenParams::tiny(5));
        let aug = augment_cp_peering(&gen.graph, &gen.ixp_members, 0.5, 1).unwrap();
        assert_eq!(gen.graph.len(), aug.len());
        for n in gen.graph.nodes() {
            assert_eq!(gen.graph.asn(n), aug.asn(n));
        }
        assert_eq!(gen.graph.content_providers(), aug.content_providers());
    }

    #[test]
    fn zero_fraction_is_identity() {
        let gen = generate(&GenParams::tiny(8));
        let aug = augment_cp_peering(&gen.graph, &gen.ixp_members, 0.0, 1).unwrap();
        assert_eq!(gen.graph.num_edges(), aug.num_edges());
    }

    #[test]
    fn deterministic_given_seed() {
        let gen = generate(&GenParams::tiny(8));
        let a = augment_cp_peering(&gen.graph, &gen.ixp_members, 0.8, 42).unwrap();
        let b = augment_cp_peering(&gen.graph, &gen.ixp_members, 0.8, 42).unwrap();
        let ea: Vec<_> = a.edges().collect();
        let eb: Vec<_> = b.edges().collect();
        assert_eq!(ea, eb);
    }
}
