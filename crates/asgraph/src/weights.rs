//! Traffic-origination weights (Section 3.1 of the paper).

use crate::graph::AsGraph;
use crate::ids::AsId;

/// Per-node traffic-origination weights `w_n`.
///
/// The paper's model: every stub and ISP originates unit traffic
/// (`w = 1`); the designated content providers jointly originate an
/// `x` fraction of *all* Internet traffic, split equally among them
/// (Section 3.1). Solving `k·w_cp = x · (k·w_cp + m)` for `k` CPs and
/// `m` other ASes gives `w_cp = x·m / (k·(1-x))` — e.g. `x = 10%` on
/// the paper's 36,964-node graph yields `w_cp ≈ 821`, matching the
/// figure quoted in Section 7.1.
#[derive(Clone, Debug)]
pub struct Weights {
    w: Vec<f64>,
    cp_fraction: f64,
}

impl Weights {
    /// Unit weight for every AS (`x = 0`: no CP skew).
    pub fn uniform(graph: &AsGraph) -> Self {
        Weights {
            w: vec![1.0; graph.len()],
            cp_fraction: 0.0,
        }
    }

    /// The paper's CP-skewed weights: the designated CPs jointly
    /// originate fraction `x ∈ [0, 1)` of all traffic, split equally;
    /// all other ASes originate unit traffic.
    ///
    /// # Panics
    /// Panics if `x` is not in `[0, 1)`, or if `x > 0` while the graph
    /// designates no content providers.
    pub fn with_cp_fraction(graph: &AsGraph, x: f64) -> Self {
        assert!((0.0..1.0).contains(&x), "cp fraction must be in [0,1)");
        let k = graph.content_providers().len();
        if x > 0.0 {
            assert!(
                k > 0,
                "cp fraction > 0 requires designated content providers"
            );
        }
        let mut w = vec![1.0; graph.len()];
        if k > 0 && x > 0.0 {
            let m = (graph.len() - k) as f64;
            let w_cp = x * m / (k as f64 * (1.0 - x));
            for &cp in graph.content_providers() {
                w[cp.index()] = w_cp;
            }
        }
        Weights { w, cp_fraction: x }
    }

    /// The weight of node `n`.
    #[inline]
    pub fn get(&self, n: AsId) -> f64 {
        self.w[n.index()]
    }

    /// The configured CP traffic fraction `x`.
    pub fn cp_fraction(&self) -> f64 {
        self.cp_fraction
    }

    /// Total originated traffic, `Σ_n w_n`.
    pub fn total(&self) -> f64 {
        self.w.iter().sum()
    }

    /// Raw slice indexed by node id.
    pub fn as_slice(&self) -> &[f64] {
        &self.w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::AsGraphBuilder;

    fn graph_with_cps(k: usize, others: usize) -> AsGraph {
        let mut b = AsGraphBuilder::new();
        let hub = b.add_node(1);
        for i in 0..k {
            let cp = b.add_node(1000 + i as u32);
            b.add_provider_customer(hub, cp).unwrap();
            b.mark_content_provider(cp);
        }
        for i in 0..others.saturating_sub(1) {
            let s = b.add_node(2000 + i as u32);
            b.add_provider_customer(hub, s).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn uniform_weights() {
        let g = graph_with_cps(2, 10);
        let w = Weights::uniform(&g);
        assert_eq!(w.total(), g.len() as f64);
        assert_eq!(w.cp_fraction(), 0.0);
    }

    #[test]
    fn cp_fraction_balances() {
        let g = graph_with_cps(5, 100);
        for &x in &[0.1, 0.2, 0.33, 0.5] {
            let w = Weights::with_cp_fraction(&g, x);
            let cp_total: f64 = g.content_providers().iter().map(|&c| w.get(c)).sum();
            assert!(
                (cp_total / w.total() - x).abs() < 1e-12,
                "x={x}: got {}",
                cp_total / w.total()
            );
        }
    }

    #[test]
    fn paper_example_w_cp_821() {
        // 36,964 ASes, 5 CPs, x = 10% → w_cp ≈ 821 (Section 7.1).
        let m: f64 = 36_964.0 - 5.0;
        let w_cp = 0.1 * m / (5.0 * 0.9);
        assert!((w_cp - 821.0).abs() < 1.0, "w_cp = {w_cp}");
    }

    #[test]
    fn zero_fraction_is_uniform() {
        let g = graph_with_cps(3, 20);
        let w = Weights::with_cp_fraction(&g, 0.0);
        assert_eq!(w.get(g.content_providers()[0]), 1.0);
    }

    #[test]
    #[should_panic(expected = "cp fraction")]
    fn rejects_fraction_of_one() {
        let g = graph_with_cps(1, 5);
        let _ = Weights::with_cp_fraction(&g, 1.0);
    }
}
