//! Topology fault injection: seeded link and node failures.
//!
//! The paper defers "resiliency to attack" (Section 6.4) to future
//! work; evaluating it honestly requires measuring hijack outcomes not
//! just on the pristine topology but under churn — links flapping,
//! routers dying — the regime *Is the Juice Worth the Squeeze?*-style
//! studies stress-test. [`apply_faults`] derives a degraded copy of an
//! [`AsGraph`] from a seeded [`FaultPlan`]:
//!
//! * each undirected edge fails independently with probability
//!   `link_rate`;
//! * each node fails independently with probability `node_rate` — a
//!   failed node keeps its id (so [`AsId`]s, AS numbers, and any
//!   [`SecureSet`](../../sbgp_routing/struct.SecureSet.html) indexed by
//!   them stay valid) but loses every incident edge, isolating it.
//!
//! The surviving graph is rebuilt through [`AsGraphBuilder`] with the
//! nodes in their original order, so node identity is stable across
//! the base/faulted pair — the property the resilience evaluation
//! relies on when it reuses a deployment state computed on the intact
//! graph. Dropping edges cannot create customer–provider cycles, so
//! the rebuild cannot fail GR1 validation.

use crate::builder::AsGraphBuilder;
use crate::error::GraphError;
use crate::graph::AsGraph;
use crate::ids::{AsId, Relationship};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded description of which failures to inject.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    /// Independent failure probability per undirected edge, in `[0, 1]`.
    pub link_rate: f64,
    /// Independent failure probability per node, in `[0, 1]`. A failed
    /// node is isolated (all incident edges removed), not deleted.
    pub node_rate: f64,
    /// RNG seed; the same plan always fails the same elements.
    pub seed: u64,
}

impl FaultPlan {
    /// A plan failing only links, at `rate`.
    pub fn links(rate: f64, seed: u64) -> FaultPlan {
        FaultPlan {
            link_rate: rate,
            node_rate: 0.0,
            seed,
        }
    }

    /// Check both rates are valid probabilities.
    pub fn validate(&self) -> Result<(), GraphError> {
        for (param, rate) in [("link_rate", self.link_rate), ("node_rate", self.node_rate)] {
            if !(0.0..=1.0).contains(&rate) {
                return Err(GraphError::InvalidParam {
                    param,
                    message: format!("must be a probability in [0, 1], got {rate}"),
                });
            }
        }
        Ok(())
    }
}

/// What a fault injection actually removed.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultReport {
    /// Nodes that failed (isolated); ascending id order.
    pub failed_nodes: Vec<AsId>,
    /// Undirected edges removed, in the graph's canonical edge order —
    /// both direct link failures and edges lost to a failed endpoint.
    pub failed_links: Vec<(AsId, AsId)>,
    /// Edges present in the degraded graph.
    pub surviving_edges: usize,
    /// Edges in the original graph.
    pub total_edges: usize,
}

impl FaultReport {
    /// Fraction of the original edges that survived.
    pub fn edge_survival(&self) -> f64 {
        if self.total_edges == 0 {
            return 1.0;
        }
        self.surviving_edges as f64 / self.total_edges as f64
    }
}

/// Apply `plan` to `g`, returning the degraded graph and a report of
/// what failed. Node ids and AS numbers are preserved exactly.
pub fn apply_faults(g: &AsGraph, plan: &FaultPlan) -> Result<(AsGraph, FaultReport), GraphError> {
    plan.validate()?;
    let mut rng = StdRng::seed_from_u64(plan.seed);

    // Node failures first, in node order, so the link-failure stream
    // for a given seed is unchanged when node_rate is zero.
    let mut node_failed = vec![false; g.len()];
    let mut failed_nodes = Vec::new();
    if plan.node_rate > 0.0 {
        for n in g.nodes() {
            if rng.gen_bool(plan.node_rate) {
                node_failed[n.index()] = true;
                failed_nodes.push(n);
            }
        }
    }

    let mut surviving: Vec<(AsId, AsId, Relationship)> = Vec::with_capacity(g.num_edges());
    let mut failed_links = Vec::new();
    for (a, b, rel) in g.edges() {
        let endpoint_down = node_failed[a.index()] || node_failed[b.index()];
        let link_down = plan.link_rate > 0.0 && rng.gen_bool(plan.link_rate);
        if endpoint_down || link_down {
            failed_links.push((a, b));
        } else {
            surviving.push((a, b, rel));
        }
    }

    let mut b = AsGraphBuilder::with_capacity(g.len(), surviving.len());
    for n in g.nodes() {
        b.add_node(g.asn(n));
    }
    for &(x, y, rel) in &surviving {
        match rel {
            Relationship::Customer => b.add_provider_customer(x, y)?,
            Relationship::Peer => b.add_peer_peer(x, y)?,
            Relationship::Provider => unreachable!("edges() never emits provider orientation"),
        }
    }
    for &cp in g.content_providers() {
        b.mark_content_provider(cp);
    }
    let degraded = b.build()?;
    let report = FaultReport {
        failed_nodes,
        surviving_edges: surviving.len(),
        total_edges: g.num_edges(),
        failed_links,
    };
    Ok((degraded, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenParams};

    #[test]
    fn zero_rates_are_identity() {
        let g = generate(&GenParams::small(3)).graph;
        let (f, report) = apply_faults(&g, &FaultPlan::links(0.0, 1)).unwrap();
        let ea: Vec<_> = g.edges().collect();
        let eb: Vec<_> = f.edges().collect();
        assert_eq!(ea, eb);
        assert!(report.failed_links.is_empty() && report.failed_nodes.is_empty());
        assert_eq!(report.edge_survival(), 1.0);
    }

    #[test]
    fn full_link_rate_removes_every_edge() {
        let g = generate(&GenParams::small(3)).graph;
        let (f, report) = apply_faults(&g, &FaultPlan::links(1.0, 1)).unwrap();
        assert_eq!(f.num_edges(), 0);
        assert_eq!(report.failed_links.len(), g.num_edges());
        assert_eq!(report.edge_survival(), 0.0);
    }

    #[test]
    fn deterministic_given_plan() {
        let g = generate(&GenParams::small(7)).graph;
        let plan = FaultPlan {
            link_rate: 0.2,
            node_rate: 0.05,
            seed: 42,
        };
        let (a, ra) = apply_faults(&g, &plan).unwrap();
        let (b, rb) = apply_faults(&g, &plan).unwrap();
        let ea: Vec<_> = a.edges().collect();
        let eb: Vec<_> = b.edges().collect();
        assert_eq!(ea, eb);
        assert_eq!(ra, rb);
        // A different seed fails different elements.
        let (_, rc) = apply_faults(&g, &FaultPlan { seed: 43, ..plan }).unwrap();
        assert_ne!(ra.failed_links, rc.failed_links);
    }

    #[test]
    fn node_identity_preserved() {
        let g = generate(&GenParams::small(5)).graph;
        let plan = FaultPlan {
            link_rate: 0.3,
            node_rate: 0.1,
            seed: 9,
        };
        let (f, _) = apply_faults(&g, &plan).unwrap();
        assert_eq!(g.len(), f.len());
        for n in g.nodes() {
            assert_eq!(g.asn(n), f.asn(n));
        }
        assert_eq!(g.content_providers(), f.content_providers());
    }

    #[test]
    fn failed_nodes_are_isolated() {
        let g = generate(&GenParams::small(11)).graph;
        let plan = FaultPlan {
            link_rate: 0.0,
            node_rate: 0.2,
            seed: 4,
        };
        let (f, report) = apply_faults(&g, &plan).unwrap();
        assert!(
            !report.failed_nodes.is_empty(),
            "expected some node failures"
        );
        for &n in &report.failed_nodes {
            assert_eq!(f.degree(n), 0, "failed node {n} still has edges");
        }
    }

    #[test]
    fn invalid_rates_are_rejected() {
        let g = generate(&GenParams::tiny(1)).graph;
        for bad in [-0.1, 1.5, f64::NAN] {
            assert!(matches!(
                apply_faults(&g, &FaultPlan::links(bad, 0)),
                Err(GraphError::InvalidParam {
                    param: "link_rate",
                    ..
                })
            ));
            let plan = FaultPlan {
                link_rate: 0.0,
                node_rate: bad,
                seed: 0,
            };
            assert!(matches!(
                apply_faults(&g, &plan),
                Err(GraphError::InvalidParam {
                    param: "node_rate",
                    ..
                })
            ));
        }
    }

    #[test]
    fn report_accounting_is_consistent() {
        let g = generate(&GenParams::small(13)).graph;
        let plan = FaultPlan {
            link_rate: 0.25,
            node_rate: 0.05,
            seed: 77,
        };
        let (f, report) = apply_faults(&g, &plan).unwrap();
        assert_eq!(report.total_edges, g.num_edges());
        assert_eq!(report.surviving_edges, f.num_edges());
        assert_eq!(
            report.surviving_edges + report.failed_links.len(),
            report.total_edges
        );
    }
}
