//! The immutable, validated AS-level graph.

use crate::ids::{AsClass, AsId, Relationship};
use std::collections::HashMap;

/// An immutable AS-level topology annotated with business relationships.
///
/// Adjacency is stored in a compressed sparse row (CSR) layout with each
/// node's neighbors grouped by relationship — `[customers][peers]
/// [providers]` — and each group sorted by node id. The policy-aware
/// BFS of the routing crate iterates exactly one of these groups per
/// stage, so grouping avoids a per-neighbor branch in the innermost
/// loop of the simulator.
///
/// Construct via [`AsGraphBuilder`](crate::AsGraphBuilder), which
/// validates the topology (symmetric relationships, no duplicates, GR1
/// acyclicity) before freezing it.
#[derive(Clone, Debug)]
pub struct AsGraph {
    pub(crate) asns: Vec<u32>,
    pub(crate) class: Vec<AsClass>,
    pub(crate) adj: Vec<AsId>,
    /// `offsets[n]..offsets[n+1]` spans node n's neighbors in `adj`.
    pub(crate) offsets: Vec<u32>,
    /// Index into `adj` where node n's peers begin.
    pub(crate) peer_start: Vec<u32>,
    /// Index into `adj` where node n's providers begin.
    pub(crate) prov_start: Vec<u32>,
    pub(crate) asn_index: HashMap<u32, AsId>,
    pub(crate) content_providers: Vec<AsId>,
}

impl AsGraph {
    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.asns.len()
    }

    /// Whether the graph has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.asns.is_empty()
    }

    /// Total number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.adj.len() / 2
    }

    /// All node ids, in index order.
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = AsId> + '_ {
        (0..self.len() as u32).map(AsId)
    }

    /// The AS-number label of a node (distinct from its dense index).
    #[inline]
    pub fn asn(&self, n: AsId) -> u32 {
        self.asns[n.index()]
    }

    /// Look up a node by its AS-number label.
    pub fn node_by_asn(&self, asn: u32) -> Option<AsId> {
        self.asn_index.get(&asn).copied()
    }

    /// The class (stub / ISP / content provider) of a node.
    #[inline]
    pub fn class(&self, n: AsId) -> AsClass {
        self.class[n.index()]
    }

    /// Whether the node is a stub (no customers, not a CP).
    #[inline]
    pub fn is_stub(&self, n: AsId) -> bool {
        self.class[n.index()] == AsClass::Stub
    }

    /// Whether the node is an ISP.
    #[inline]
    pub fn is_isp(&self, n: AsId) -> bool {
        self.class[n.index()] == AsClass::Isp
    }

    /// The designated content providers, in declaration order.
    pub fn content_providers(&self) -> &[AsId] {
        &self.content_providers
    }

    /// Node ids of all ISPs.
    pub fn isps(&self) -> impl Iterator<Item = AsId> + '_ {
        self.nodes().filter(|&n| self.is_isp(n))
    }

    /// Node ids of all stubs.
    pub fn stubs(&self) -> impl Iterator<Item = AsId> + '_ {
        self.nodes().filter(|&n| self.is_stub(n))
    }

    /// The customers of `n` (neighbors that pay `n`), sorted by id.
    #[inline]
    pub fn customers(&self, n: AsId) -> &[AsId] {
        let i = n.index();
        &self.adj[self.offsets[i] as usize..self.peer_start[i] as usize]
    }

    /// The peers of `n`, sorted by id.
    #[inline]
    pub fn peers(&self, n: AsId) -> &[AsId] {
        let i = n.index();
        &self.adj[self.peer_start[i] as usize..self.prov_start[i] as usize]
    }

    /// The providers of `n` (neighbors `n` pays), sorted by id.
    #[inline]
    pub fn providers(&self, n: AsId) -> &[AsId] {
        let i = n.index();
        &self.adj[self.prov_start[i] as usize..self.offsets[i + 1] as usize]
    }

    /// All neighbors of `n`, grouped customers-then-peers-then-providers.
    #[inline]
    pub fn neighbors(&self, n: AsId) -> &[AsId] {
        let i = n.index();
        &self.adj[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Total degree of `n`.
    #[inline]
    pub fn degree(&self, n: AsId) -> usize {
        let i = n.index();
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// Number of customers of `n`.
    #[inline]
    pub fn num_customers(&self, n: AsId) -> usize {
        let i = n.index();
        (self.peer_start[i] - self.offsets[i]) as usize
    }

    /// The relationship of `b` as seen from `a` (`None` if not adjacent).
    pub fn relationship(&self, a: AsId, b: AsId) -> Option<Relationship> {
        if self.customers(a).binary_search(&b).is_ok() {
            Some(Relationship::Customer)
        } else if self.peers(a).binary_search(&b).is_ok() {
            Some(Relationship::Peer)
        } else if self.providers(a).binary_search(&b).is_ok() {
            Some(Relationship::Provider)
        } else {
            None
        }
    }

    /// Whether `a` and `b` share an edge of any kind.
    pub fn are_adjacent(&self, a: AsId, b: AsId) -> bool {
        self.relationship(a, b).is_some()
    }

    /// Iterate over every undirected edge exactly once, as
    /// `(node, neighbor, relationship-of-neighbor-to-node)` with
    /// `node < neighbor` for customer/provider order normalization the
    /// peer case, and provider→customer orientation otherwise.
    pub fn edges(&self) -> EdgeIter<'_> {
        EdgeIter {
            graph: self,
            node: 0,
            pos: 0,
        }
    }

    /// Number of stubs whose only providers appear in `set`.
    ///
    /// Used by the deployment model: a secure ISP deploys simplex
    /// S\*BGP at *all* of its stub customers, so this counts stubs that
    /// become secure when `set` does.
    pub fn stub_customers_of(&self, n: AsId) -> impl Iterator<Item = AsId> + '_ {
        self.customers(n)
            .iter()
            .copied()
            .filter(|&c| self.is_stub(c))
    }
}

/// Iterator over undirected edges; see [`AsGraph::edges`].
pub struct EdgeIter<'g> {
    graph: &'g AsGraph,
    node: u32,
    pos: usize,
}

impl<'g> Iterator for EdgeIter<'g> {
    /// `(a, b, rel)` where `rel` is the relationship of `b` from `a`'s
    /// perspective. Customer–provider edges are emitted once, oriented
    /// provider→customer (`rel == Relationship::Customer`); peer edges
    /// are emitted once with `a < b`.
    type Item = (AsId, AsId, Relationship);

    fn next(&mut self) -> Option<Self::Item> {
        let g = self.graph;
        while (self.node as usize) < g.len() {
            let n = AsId(self.node);
            let i = n.index();
            let start = g.offsets[i] as usize;
            let end = g.offsets[i + 1] as usize;
            while start + self.pos < end {
                let k = start + self.pos;
                self.pos += 1;
                let m = g.adj[k];
                if k < g.peer_start[i] as usize {
                    // m is a customer of n: emit provider→customer once.
                    return Some((n, m, Relationship::Customer));
                } else if k < g.prov_start[i] as usize {
                    // peer edge: emit only from the lower-id endpoint.
                    if n < m {
                        return Some((n, m, Relationship::Peer));
                    }
                }
                // provider edges are emitted from the other endpoint.
            }
            self.node += 1;
            self.pos = 0;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::AsGraphBuilder;
    use crate::ids::{AsClass, Relationship};

    /// Tiny fixture: 0 is provider of 1 and 2; 1--2 peer; 2 provider of 3.
    fn tiny() -> crate::AsGraph {
        let mut b = AsGraphBuilder::new();
        let a0 = b.add_node(100);
        let a1 = b.add_node(200);
        let a2 = b.add_node(300);
        let a3 = b.add_node(400);
        b.add_provider_customer(a0, a1).unwrap();
        b.add_provider_customer(a0, a2).unwrap();
        b.add_peer_peer(a1, a2).unwrap();
        b.add_provider_customer(a2, a3).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn adjacency_groups() {
        let g = tiny();
        let (a0, a1, a2, a3) = (
            g.node_by_asn(100).unwrap(),
            g.node_by_asn(200).unwrap(),
            g.node_by_asn(300).unwrap(),
            g.node_by_asn(400).unwrap(),
        );
        assert_eq!(g.customers(a0), &[a1, a2]);
        assert!(g.peers(a0).is_empty());
        assert!(g.providers(a0).is_empty());
        assert_eq!(g.providers(a1), &[a0]);
        assert_eq!(g.peers(a1), &[a2]);
        assert_eq!(g.customers(a2), &[a3]);
        assert_eq!(g.providers(a3), &[a2]);
        assert_eq!(g.num_edges(), 4);
    }

    #[test]
    fn classification() {
        let g = tiny();
        let (a0, a1, a2, a3) = (
            g.node_by_asn(100).unwrap(),
            g.node_by_asn(200).unwrap(),
            g.node_by_asn(300).unwrap(),
            g.node_by_asn(400).unwrap(),
        );
        assert_eq!(g.class(a0), AsClass::Isp);
        assert_eq!(g.class(a1), AsClass::Stub); // no customers
        assert_eq!(g.class(a2), AsClass::Isp);
        assert_eq!(g.class(a3), AsClass::Stub);
        assert_eq!(g.stubs().count(), 2);
        assert_eq!(g.isps().count(), 2);
    }

    #[test]
    fn relationship_lookup() {
        let g = tiny();
        let (a0, a1, a2, a3) = (
            g.node_by_asn(100).unwrap(),
            g.node_by_asn(200).unwrap(),
            g.node_by_asn(300).unwrap(),
            g.node_by_asn(400).unwrap(),
        );
        assert_eq!(g.relationship(a0, a1), Some(Relationship::Customer));
        assert_eq!(g.relationship(a1, a0), Some(Relationship::Provider));
        assert_eq!(g.relationship(a1, a2), Some(Relationship::Peer));
        assert_eq!(g.relationship(a2, a1), Some(Relationship::Peer));
        assert_eq!(g.relationship(a0, a3), None);
        assert!(g.are_adjacent(a2, a3));
        assert!(!g.are_adjacent(a1, a3));
    }

    #[test]
    fn edge_iterator_emits_each_edge_once() {
        let g = tiny();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 4);
        let peers = edges
            .iter()
            .filter(|(_, _, r)| *r == Relationship::Peer)
            .count();
        assert_eq!(peers, 1);
        let cp = edges
            .iter()
            .filter(|(_, _, r)| *r == Relationship::Customer)
            .count();
        assert_eq!(cp, 3);
    }

    #[test]
    fn degree_counts() {
        let g = tiny();
        let a2 = g.node_by_asn(300).unwrap();
        assert_eq!(g.degree(a2), 3);
        assert_eq!(g.num_customers(a2), 1);
        assert_eq!(g.stub_customers_of(a2).count(), 1);
    }
}
