//! Property-based tests for the topology substrate.

use proptest::prelude::*;
use sbgp_asgraph::gen::{generate, GenParams};
use sbgp_asgraph::{io, stats, AsGraphBuilder, AsId, GraphError, Relationship, Weights};

/// Random edge soup over `n` nodes: provider→customer edges only point
/// from lower to higher index (guaranteeing GR1), peers arbitrary.
fn arb_hierarchy(max_n: usize) -> impl Strategy<Value = (usize, Vec<(u32, u32, bool)>)> {
    (4usize..max_n).prop_flat_map(|n| {
        let edges =
            proptest::collection::vec((0u32..n as u32, 0u32..n as u32, any::<bool>()), 0..n * 3);
        (Just(n), edges)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The builder either produces a valid graph or rejects with a
    /// structured error — never panics, never builds inconsistent
    /// adjacency.
    #[test]
    fn builder_total_and_consistent((n, edges) in arb_hierarchy(40)) {
        let mut b = AsGraphBuilder::new();
        for i in 0..n {
            b.add_node(1000 + i as u32);
        }
        let mut accepted: Vec<(AsId, AsId, bool)> = Vec::new();
        for (x, y, is_peer) in edges {
            let (a, c) = (AsId(x.min(y)), AsId(x.max(y)));
            let res = if is_peer {
                b.add_peer_peer(a, c)
            } else {
                b.add_provider_customer(a, c)
            };
            match res {
                Ok(()) => accepted.push((a, c, is_peer)),
                Err(GraphError::SelfLoop(_)) => prop_assert_eq!(a, c),
                Err(GraphError::DuplicateEdge(p, q)) => {
                    prop_assert!(accepted.iter().any(|&(u, v, _)|
                        (u == p && v == q) || (u == q && v == p)));
                }
                Err(e) => prop_assert!(false, "unexpected error {e}"),
            }
        }
        let g = b.build().expect("index-ordered providers cannot form GR1 cycles");
        prop_assert_eq!(g.num_edges(), accepted.len());
        // Relationship symmetry on every accepted edge.
        for (a, c, is_peer) in accepted {
            let fwd = g.relationship(a, c).unwrap();
            let back = g.relationship(c, a).unwrap();
            prop_assert_eq!(back, fwd.reverse());
            prop_assert_eq!(fwd == Relationship::Peer, is_peer);
        }
    }

    /// Serialization round-trips preserve the relationship multiset.
    #[test]
    fn io_roundtrip((n, edges) in arb_hierarchy(30)) {
        let mut b = AsGraphBuilder::new();
        for i in 0..n {
            b.add_node(1000 + i as u32);
        }
        for (x, y, is_peer) in edges {
            let (a, c) = (AsId(x.min(y)), AsId(x.max(y)));
            let _ = if is_peer {
                b.add_peer_peer(a, c)
            } else {
                b.add_provider_customer(a, c)
            };
        }
        let g = b.build().unwrap();
        let mut buf = Vec::new();
        io::write_graph(&g, &mut buf).unwrap();
        let g2 = io::read_graph(std::io::Cursor::new(buf)).unwrap();
        prop_assert_eq!(g.len(), g2.len());
        prop_assert_eq!(g.num_edges(), g2.num_edges());
        let norm = |g: &sbgp_asgraph::AsGraph| {
            let mut v: Vec<(u32, u32, bool)> = g
                .edges()
                .map(|(a, b, r)| {
                    let (x, y) = (g.asn(a), g.asn(b));
                    if r == Relationship::Peer {
                        (x.min(y), x.max(y), true)
                    } else {
                        (x, y, false)
                    }
                })
                .collect();
            v.sort_unstable();
            v
        };
        prop_assert_eq!(norm(&g), norm(&g2));
    }

    /// Weights always balance the requested CP fraction.
    #[test]
    fn weights_balance(x in 0.0f64..0.9, seed in 0u64..100) {
        let g = generate(&GenParams::new(120, seed)).graph;
        let w = Weights::with_cp_fraction(&g, x);
        let cp_total: f64 = g.content_providers().iter().map(|&c| w.get(c)).sum();
        prop_assert!((cp_total / w.total() - x).abs() < 1e-9);
        for n in g.nodes() {
            prop_assert!(w.get(n) > 0.0);
        }
    }

    /// Generator invariants across seeds and sizes: classification is
    /// definitional, the structure is connected upward, and the class
    /// mix stays in the paper's regime.
    #[test]
    fn generator_invariants(seed in 0u64..50, n in 100usize..400) {
        let gen = generate(&GenParams::new(n, seed));
        let g = &gen.graph;
        prop_assert_eq!(g.len(), n);
        let s = stats::summarize(g);
        prop_assert_eq!(s.ases, s.stubs + s.isps + s.cps);
        let stub_share = s.stubs as f64 / s.ases as f64;
        prop_assert!((0.78..=0.92).contains(&stub_share), "stub share {}", stub_share);
        for node in g.nodes() {
            // Stubs have no customers; ISPs have at least one.
            match g.class(node) {
                sbgp_asgraph::AsClass::Stub => prop_assert!(g.customers(node).is_empty()),
                sbgp_asgraph::AsClass::Isp => prop_assert!(!g.customers(node).is_empty()),
                sbgp_asgraph::AsClass::ContentProvider => {
                    prop_assert!(!g.providers(node).is_empty(), "CP must buy transit");
                }
            }
            // Everyone except the Tier-1 clique has a provider.
            if g.providers(node).is_empty() {
                prop_assert!(
                    g.is_isp(node),
                    "provider-free node {} must be a Tier-1 ISP",
                    node
                );
            }
        }
        for &m in &gen.ixp_members {
            prop_assert!(m.index() < g.len());
        }
    }
}
