//! Traffic-flow accumulation and the two ISP utility models
//! (Section 3.3, Equations 1 and 2).
//!
//! Given a resolved [`RouteTree`], every source's origination weight is
//! pushed down its chosen path in one pass over nodes in *descending*
//! best-route-length order, yielding `flow[n]` — the total traffic
//! entering or originating at `n` bound for the destination (the
//! weight of the subtree `T_n(d,S)` plus `w_n`).
//!
//! From the flows, one more pass yields both utility models:
//!
//! * **outgoing** (Eq. 1): `n` gains `flow[n] − w_n` for a destination
//!   it reaches *via a customer edge* (it forwards the whole subtree's
//!   traffic to a paying customer);
//! * **incoming** (Eq. 2): `n` gains `flow[m]` for every neighbor `m`
//!   that routes through `n` and is `n`'s *customer* (the traffic
//!   enters `n` on a customer edge — i.e. `m`'s best route is a
//!   provider route through `n`).

use crate::context::{RouteClass, RouteContext};
use crate::secure::SecureSet;
use crate::tree::{compute_tree, RouteTree, TreePolicy, NO_NEXT_HOP};
use sbgp_asgraph::{AsGraph, AsId, Weights};

/// Compute per-node flows for one destination: `flow[n]` is `w_n` plus
/// the weight of every source routing through `n` (the destination's
/// own entry accumulates the grand total and is not meaningful).
pub fn accumulate_flows<C: RouteContext + ?Sized>(
    ctx: &C,
    tree: &RouteTree,
    weights: &Weights,
    flow: &mut Vec<f64>,
) {
    flow.clear();
    flow.resize(tree.next_hop.len(), 0.0);
    // Descending length order: children before parents.
    for &xi in ctx.order().iter().rev() {
        let x = AsId(xi);
        if x == ctx.dest() {
            continue;
        }
        flow[x.index()] += weights.get(x);
        let nh = tree.next_hop[x.index()];
        debug_assert_ne!(nh, NO_NEXT_HOP);
        flow[nh as usize] += flow[x.index()];
    }
}

/// Add this destination's contribution to every node's outgoing and
/// incoming utility (Eqs. 1 and 2). `flow` must come from
/// [`accumulate_flows`] for the same tree.
pub fn add_utilities<C: RouteContext + ?Sized>(
    ctx: &C,
    tree: &RouteTree,
    weights: &Weights,
    flow: &[f64],
    u_out: &mut [f64],
    u_in: &mut [f64],
) {
    for &xi in ctx.order() {
        let x = AsId(xi);
        if x == ctx.dest() {
            continue;
        }
        match ctx.route_class(x) {
            // x forwards the whole subtree to a paying customer.
            RouteClass::Customer => u_out[x.index()] += flow[x.index()] - weights.get(x),
            // x's next hop is its provider: the provider receives this
            // branch on a customer edge.
            RouteClass::Provider => {
                let h = tree.next_hop[x.index()] as usize;
                u_in[h] += flow[x.index()];
            }
            RouteClass::Peer => {}
            RouteClass::SelfDest | RouteClass::Unreachable => unreachable!(),
        }
    }
}

/// Scratch-owning helper that runs the full per-destination pipeline
/// (tree → flows → utilities) and accumulates both utility models
/// across destinations. One accumulator per worker thread; this is the
/// "map" side of the paper's DryadLINQ map-reduce (Appendix C.3).
#[derive(Clone, Debug)]
pub struct UtilityAccumulator {
    /// Outgoing utility (Eq. 1) per node, summed over processed
    /// destinations.
    pub u_out: Vec<f64>,
    /// Incoming utility (Eq. 2) per node, summed over processed
    /// destinations.
    pub u_in: Vec<f64>,
    tree: RouteTree,
    flow: Vec<f64>,
}

impl UtilityAccumulator {
    /// Zeroed accumulator for an `n`-node graph.
    pub fn new(n: usize) -> Self {
        UtilityAccumulator {
            u_out: vec![0.0; n],
            u_in: vec![0.0; n],
            tree: RouteTree::new(n),
            flow: Vec::with_capacity(n),
        }
    }

    /// Zero both utility vectors.
    pub fn reset(&mut self) {
        self.u_out.fill(0.0);
        self.u_in.fill(0.0);
    }

    /// Process one destination under `secure_set`, adding its utility
    /// contributions.
    pub fn add_destination<C: RouteContext + ?Sized>(
        &mut self,
        g: &AsGraph,
        ctx: &C,
        secure_set: &SecureSet,
        policy: TreePolicy,
        weights: &Weights,
    ) {
        compute_tree(g, ctx, secure_set, policy, &mut self.tree);
        accumulate_flows(ctx, &self.tree, weights, &mut self.flow);
        add_utilities(
            ctx,
            &self.tree,
            weights,
            &self.flow,
            &mut self.u_out,
            &mut self.u_in,
        );
    }

    /// The last computed route tree (for inspection/tests).
    pub fn last_tree(&self) -> &RouteTree {
        &self.tree
    }

    /// Merge another accumulator's totals into this one (the "reduce"
    /// step).
    pub fn merge(&mut self, other: &UtilityAccumulator) {
        for (a, b) in self.u_out.iter_mut().zip(&other.u_out) {
            *a += b;
        }
        for (a, b) in self.u_in.iter_mut().zip(&other.u_in) {
            *a += b;
        }
    }
}

/// Fused per-destination fold: compute flows and *write* (not add)
/// this destination's dense utility contribution into `u_out`/`u_in`
/// at the indices in `ctx.order()`, in two passes instead of the four
/// of zero + [`accumulate_flows`] + [`add_utilities`].
///
/// `ctx.order()` is sorted by BFS level, so both passes stream through
/// the hot arrays one route-length block at a time instead of making
/// separate zeroing and accumulation sweeps — the cache-friendly shape
/// that matters once `n ≫ 10K` and the per-destination arrays stop
/// fitting in L2.
///
/// Bit-identical to the unfused sequence: `u_out[x]` is written
/// exactly once per destination (and `0.0 + v == v` bitwise for the
/// non-negative `v = flow[x] − w_x`), flows are read only after the
/// node's whole subtree is folded (descending-length order), and the
/// `u_in` accumulation replays [`add_utilities`]'s forward order.
/// Entries outside `ctx.order()` (unreachable nodes) are untouched,
/// matching the engine's order-scoped zeroing.
pub fn fold_utilities<C: RouteContext + ?Sized>(
    ctx: &C,
    tree: &RouteTree,
    weights: &Weights,
    flow: &mut Vec<f64>,
    u_out: &mut [f64],
    u_in: &mut [f64],
) {
    flow.clear();
    flow.resize(tree.next_hop.len(), 0.0);
    let di = ctx.dest().index();
    u_out[di] = 0.0;
    u_in[di] = 0.0;
    // Descending length order: children before parents, so `fx` is
    // final when read.
    for &xi in ctx.order().iter().rev() {
        let x = AsId(xi);
        if x == ctx.dest() {
            continue;
        }
        let i = x.index();
        let w = weights.get(x);
        let fx = flow[i] + w;
        flow[i] = fx;
        let nh = tree.next_hop[i];
        debug_assert_ne!(nh, NO_NEXT_HOP);
        flow[nh as usize] += fx;
        u_out[i] = if ctx.route_class(x) == RouteClass::Customer {
            fx - w
        } else {
            0.0
        };
        u_in[i] = 0.0;
    }
    for &xi in ctx.order() {
        let x = AsId(xi);
        if x == ctx.dest() {
            continue;
        }
        if ctx.route_class(x) == RouteClass::Provider {
            u_in[tree.next_hop[x.index()] as usize] += flow[x.index()];
        }
    }
}

/// Compute, for a **single** node `n`, the (outgoing, incoming)
/// utility contribution of one destination under the given tree —
/// without touching per-node utility arrays. This is the hot path for
/// *projected* utility, where each candidate ISP gets its own flipped
/// state (Appendix C.1's per-ISP states).
pub fn utilities_of<C: RouteContext + ?Sized>(
    ctx: &C,
    tree: &RouteTree,
    weights: &Weights,
    n: AsId,
    flow: &mut Vec<f64>,
) -> (f64, f64) {
    accumulate_flows(ctx, tree, weights, flow);
    let mut u_out = 0.0;
    let mut u_in = 0.0;
    if ctx.route_class(n) == RouteClass::Customer {
        u_out = flow[n.index()] - weights.get(n);
    }
    // Incoming: branches entering n on customer edges are exactly the
    // nodes m with next_hop == n whose own class is Provider. Scan once.
    for &xi in ctx.order() {
        let x = AsId(xi);
        if tree.next_hop[x.index()] == n.0 && ctx.route_class(x) == RouteClass::Provider {
            u_in += flow[x.index()];
        }
    }
    (u_out, u_in)
}

/// Fused hot path for projected utility: compute flows *and* the
/// single node `target`'s (outgoing, incoming) contribution in one
/// pass over the tree, with no per-node utility arrays and no second
/// scan. Equivalent to [`accumulate_flows`] + [`utilities_of`].
///
/// This is the inner loop of the simulator: it runs once per
/// (candidate ISP, destination) pair that the Appendix C.4 skip rules
/// cannot prove unchanged.
pub fn flows_and_target_utility<C: RouteContext + ?Sized>(
    ctx: &C,
    tree: &RouteTree,
    weights: &Weights,
    target: AsId,
    flow: &mut Vec<f64>,
) -> (f64, f64) {
    flow.clear();
    flow.resize(tree.next_hop.len(), 0.0);
    let mut u_in = 0.0;
    for &xi in ctx.order().iter().rev() {
        let x = AsId(xi);
        if x == ctx.dest() {
            continue;
        }
        let fx = flow[x.index()] + weights.get(x);
        flow[x.index()] = fx;
        let nh = tree.next_hop[x.index()];
        debug_assert_ne!(nh, NO_NEXT_HOP);
        flow[nh as usize] += fx;
        // x is processed after its whole subtree (descending length),
        // so fx is final here.
        if nh == target.0 && ctx.route_class(x) == RouteClass::Provider {
            u_in += fx;
        }
    }
    let u_out = if ctx.route_class(target) == RouteClass::Customer {
        flow[target.index()] - weights.get(target)
    } else {
        0.0
    };
    (u_out, u_in)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::DestContext;
    use crate::tiebreak::LowestAsnTieBreak;
    use sbgp_asgraph::AsGraphBuilder;

    /// Chain: t (ASN 1) → isp (ASN 2) → {s1 (ASN 3), s2 (ASN 4)};
    /// plus peer q (ASN 5) of isp.
    fn chain() -> (AsGraph, [AsId; 5]) {
        let mut b = AsGraphBuilder::new();
        let t = b.add_node(1);
        let isp = b.add_node(2);
        let s1 = b.add_node(3);
        let s2 = b.add_node(4);
        let q = b.add_node(5);
        b.add_provider_customer(t, isp).unwrap();
        b.add_provider_customer(isp, s1).unwrap();
        b.add_provider_customer(isp, s2).unwrap();
        b.add_peer_peer(isp, q).unwrap();
        let g = b.build().unwrap();
        (g, [t, isp, s1, s2, q])
    }

    fn pipeline(
        g: &AsGraph,
        d: AsId,
        secure: &SecureSet,
    ) -> (DestContext, RouteTree, Vec<f64>, Weights) {
        let mut ctx = DestContext::new(g.len());
        ctx.compute(g, d, &LowestAsnTieBreak);
        let mut tree = RouteTree::new(g.len());
        compute_tree(g, &ctx, secure, TreePolicy::default(), &mut tree);
        let w = Weights::uniform(g);
        let mut flow = Vec::new();
        accumulate_flows(&ctx, &tree, &w, &mut flow);
        (ctx, tree, flow, w)
    }

    #[test]
    fn flows_sum_subtrees() {
        let (g, [t, isp, s1, s2, q]) = chain();
        let secure = SecureSet::new(g.len());
        let (_ctx, _tree, flow, _w) = pipeline(&g, s1, &secure);
        // Everyone routes to s1 through isp:
        // flow[isp] = w(isp) + w(t) + w(q) + w(s2) = 4.
        assert_eq!(flow[isp.index()], 4.0);
        assert_eq!(flow[t.index()], 1.0);
        assert_eq!(flow[q.index()], 1.0);
        assert_eq!(flow[s2.index()], 1.0);
    }

    #[test]
    fn outgoing_utility_counts_customer_destinations() {
        let (g, [t, isp, s1, _s2, q]) = chain();
        let secure = SecureSet::new(g.len());
        let (ctx, tree, flow, w) = pipeline(&g, s1, &secure);
        let mut u_out = vec![0.0; g.len()];
        let mut u_in = vec![0.0; g.len()];
        add_utilities(&ctx, &tree, &w, &flow, &mut u_out, &mut u_in);
        // isp reaches s1 via customer edge; subtree (t, q, s2) weighs 3... wait:
        // flow[isp] = w(isp)+w(t)+w(q)+w(s2) = 4, minus own weight = 3.
        assert_eq!(u_out[isp.index()], 3.0);
        // t reaches s1 via its customer isp: subtree of t is empty.
        assert_eq!(u_out[t.index()], 0.0);
        // q's route is a peer route: no outgoing utility.
        assert_eq!(u_out[q.index()], 0.0);
    }

    #[test]
    fn incoming_utility_counts_customer_arrivals() {
        let (g, [t, isp, s1, _s2, _q]) = chain();
        let secure = SecureSet::new(g.len());
        let (ctx, tree, flow, w) = pipeline(&g, s1, &secure);
        let mut u_out = vec![0.0; g.len()];
        let mut u_in = vec![0.0; g.len()];
        add_utilities(&ctx, &tree, &w, &flow, &mut u_out, &mut u_in);
        // s2's traffic enters isp on a customer edge (s2's provider
        // route). t's traffic enters isp on a *provider* edge, q's on a
        // peer edge: neither counts.
        assert_eq!(u_in[isp.index()], 1.0);
        assert_eq!(u_in[t.index()], 0.0);
        // isp's branch into t never happens (t is the top); and the
        // destination gets nothing.
        assert_eq!(u_in[s1.index()], 0.0);
    }

    #[test]
    fn accumulator_matches_manual_passes() {
        let (g, [_, isp, s1, s2, _]) = chain();
        let secure = SecureSet::new(g.len());
        let w = Weights::uniform(&g);
        let mut acc = UtilityAccumulator::new(g.len());
        let mut ctx = DestContext::new(g.len());
        for d in [s1, s2] {
            ctx.compute(&g, d, &LowestAsnTieBreak);
            acc.add_destination(&g, &ctx, &secure, TreePolicy::default(), &w);
        }
        // Two symmetric stub destinations: isp transits 3 units to each.
        assert_eq!(acc.u_out[isp.index()], 6.0);
        assert_eq!(acc.u_in[isp.index()], 2.0);
    }

    #[test]
    fn merge_adds() {
        let (g, _) = chain();
        let mut a = UtilityAccumulator::new(g.len());
        let mut b = UtilityAccumulator::new(g.len());
        a.u_out[0] = 1.5;
        b.u_out[0] = 2.5;
        b.u_in[1] = 1.0;
        a.merge(&b);
        assert_eq!(a.u_out[0], 4.0);
        assert_eq!(a.u_in[1], 1.0);
    }

    #[test]
    fn utilities_of_matches_full_pass() {
        let (g, [t, isp, s1, _s2, q]) = chain();
        let secure = SecureSet::new(g.len());
        let (ctx, tree, flow, w) = pipeline(&g, s1, &secure);
        let mut u_out = vec![0.0; g.len()];
        let mut u_in = vec![0.0; g.len()];
        add_utilities(&ctx, &tree, &w, &flow, &mut u_out, &mut u_in);
        let mut scratch = Vec::new();
        for n in [t, isp, q] {
            let (o, i) = utilities_of(&ctx, &tree, &w, n, &mut scratch);
            assert_eq!(o, u_out[n.index()], "outgoing for {n}");
            assert_eq!(i, u_in[n.index()], "incoming for {n}");
        }
    }

    /// `fold_utilities` must replay the unfused zero + accumulate +
    /// add sequence bit for bit, including on reused (dirty) buffers.
    #[test]
    fn fold_matches_unfused_sequence_bitwise() {
        let (g, [_t, _isp, s1, s2, _q]) = chain();
        let mut secure = SecureSet::new(g.len());
        secure.set(s1, true);
        let w = Weights::uniform(&g);
        let mut ctx = DestContext::new(g.len());
        let mut tree = RouteTree::new(g.len());
        // Dirty buffers: the fold must overwrite, not add.
        let mut flow_a = vec![99.0; g.len()];
        let mut flow_b = vec![-7.0; g.len()];
        let mut out_a = vec![3.25; g.len()];
        let mut in_a = vec![-1.5; g.len()];
        let mut out_b = vec![42.0; g.len()];
        let mut in_b = vec![0.125; g.len()];
        for d in [s1, s2] {
            ctx.compute(&g, d, &LowestAsnTieBreak);
            compute_tree(&g, &ctx, &secure, TreePolicy::default(), &mut tree);
            // Unfused reference: zero over order, then two passes.
            for &xi in RouteContext::order(&ctx) {
                out_a[xi as usize] = 0.0;
                in_a[xi as usize] = 0.0;
            }
            accumulate_flows(&ctx, &tree, &w, &mut flow_a);
            add_utilities(&ctx, &tree, &w, &flow_a, &mut out_a, &mut in_a);
            fold_utilities(&ctx, &tree, &w, &mut flow_b, &mut out_b, &mut in_b);
            assert_eq!(flow_a, flow_b, "flows for dest {d}");
            for &xi in RouteContext::order(&ctx) {
                let i = xi as usize;
                assert_eq!(out_a[i].to_bits(), out_b[i].to_bits(), "u_out at {xi}");
                assert_eq!(in_a[i].to_bits(), in_b[i].to_bits(), "u_in at {xi}");
            }
        }
    }

    #[test]
    fn fused_target_matches_two_pass() {
        let (g, [t, isp, s1, _s2, q]) = chain();
        let mut secure = SecureSet::new(g.len());
        secure.set(isp, true);
        secure.set(s1, true);
        secure.set(t, true);
        let (ctx, tree, flow, w) = pipeline(&g, s1, &secure);
        let mut scratch = Vec::new();
        for n in [t, isp, q, s1] {
            let (o1, i1) = utilities_of(&ctx, &tree, &w, n, &mut scratch);
            let (o2, i2) = flows_and_target_utility(&ctx, &tree, &w, n, &mut scratch);
            assert_eq!(o1, o2, "out for {n}");
            assert_eq!(i1, i2, "in for {n}");
        }
        let _ = flow;
    }
}
