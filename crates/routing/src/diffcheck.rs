//! Differential self-checking of the fast routing pipeline.
//!
//! Observation C.1 is the load-bearing claim of the whole reproduction:
//! the optimized [`DestContext`](crate::DestContext) +
//! [`compute_tree`](crate::compute_tree) pipeline must agree with
//! reference path-vector convergence ([`oracle::converge`]) for every
//! destination, or every downstream figure silently drifts. This module
//! turns that claim into a runtime check:
//!
//! * [`compare`] replays one already-computed routing tree through the
//!   oracle and reports the first divergence (next hop, path length,
//!   route class, or security flag) as a [`Mismatch`];
//! * [`audit`] does the same from scratch for a `(graph, secure-set,
//!   destination)` triple — the reproducible form of the check;
//! * [`shrink`] greedily minimizes a failing triple (dropping edges,
//!   clearing secure bits, pruning isolated nodes) into a
//!   [`Counterexample`] whose [`artifact`](Counterexample::artifact) is
//!   a self-contained, replayable text dump.
//!
//! The simulation engine samples destinations through this module when
//! running with `--self-check <rate>`; violations are recorded, not
//! fatal, so a long sweep degrades honestly instead of aborting.

use crate::context::{DestContext, RouteClass, RouteContext};
use crate::oracle;
use crate::secure::SecureSet;
use crate::tiebreak::TieBreaker;
use crate::tree::{RouteTree, TreePolicy, NO_NEXT_HOP};
use sbgp_asgraph::{io, AsGraph, AsGraphBuilder, AsId, Relationship};
use std::fmt;

/// Which per-node quantity diverged between the fast pipeline and the
/// oracle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MismatchKind {
    /// Reachability or AS-hop length of the best route.
    PathLength,
    /// Route class (customer / peer / provider path type).
    PathType,
    /// The chosen next hop.
    NextHop,
    /// The "fully secure path" flag.
    SecureFlag,
}

impl fmt::Display for MismatchKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MismatchKind::PathLength => "path length",
            MismatchKind::PathType => "path type",
            MismatchKind::NextHop => "next hop",
            MismatchKind::SecureFlag => "secure flag",
        };
        f.write_str(s)
    }
}

/// The first divergence found between the fast pipeline and the oracle
/// for one destination. ASNs (not dense ids) are reported so the
/// mismatch stays meaningful next to a serialized graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Mismatch {
    /// ASN of the destination being checked.
    pub dest_asn: u32,
    /// ASN of the node whose route diverged.
    pub node_asn: u32,
    /// Which quantity diverged.
    pub kind: MismatchKind,
    /// The fast pipeline's value, rendered as text.
    pub fast: String,
    /// The oracle's value, rendered as text.
    pub oracle: String,
}

impl fmt::Display for Mismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dest AS{}: node AS{}: {} mismatch: fast={} oracle={}",
            self.dest_asn, self.node_asn, self.kind, self.fast, self.oracle
        )
    }
}

/// Render an optional next hop for a mismatch report.
fn fmt_hop(g: &AsGraph, h: Option<AsId>) -> String {
    match h {
        Some(m) => format!("AS{}", g.asn(m)),
        None => "-".to_string(),
    }
}

/// Route class of `x` as the oracle sees it, derived from its converged
/// path.
fn oracle_class(g: &AsGraph, dest: AsId, x: AsId, path: Option<&Vec<AsId>>) -> RouteClass {
    if x == dest {
        return RouteClass::SelfDest;
    }
    let Some(p) = path else {
        return RouteClass::Unreachable;
    };
    match g.relationship(x, p[1]).expect("next hop must be adjacent") {
        Relationship::Customer => RouteClass::Customer,
        Relationship::Peer => RouteClass::Peer,
        Relationship::Provider => RouteClass::Provider,
    }
}

/// Compare an already-computed `(ctx, tree)` pair against the oracle
/// for the same destination and deployment state. Returns the first
/// divergence in ascending node order, or `None` when the two
/// implementations agree bit for bit.
pub fn compare<C: RouteContext + ?Sized, T: TieBreaker + ?Sized>(
    g: &AsGraph,
    ctx: &C,
    tree: &RouteTree,
    secure_set: &SecureSet,
    policy: TreePolicy,
    tiebreaker: &T,
) -> Option<Mismatch> {
    let dest = ctx.dest();
    let o = oracle::converge(g, dest, secure_set, policy, tiebreaker);
    let mismatch = |node: AsId, kind, fast: String, oracle: String| Mismatch {
        dest_asn: g.asn(dest),
        node_asn: g.asn(node),
        kind,
        fast,
        oracle,
    };
    for x in g.nodes() {
        let fast_len = ctx.route_len(x).map(usize::from);
        let oracle_len = o.path_len(x);
        if fast_len != oracle_len {
            let show = |l: Option<usize>| {
                l.map(|v| v.to_string())
                    .unwrap_or_else(|| "unreachable".to_string())
            };
            return Some(mismatch(
                x,
                MismatchKind::PathLength,
                show(fast_len),
                show(oracle_len),
            ));
        }
        let o_class = oracle_class(g, dest, x, o.paths[x.index()].as_ref());
        if ctx.route_class(x) != o_class {
            return Some(mismatch(
                x,
                MismatchKind::PathType,
                format!("{:?}", ctx.route_class(x)),
                format!("{o_class:?}"),
            ));
        }
        let fast_hop = match tree.next_hop[x.index()] {
            NO_NEXT_HOP => None,
            h => Some(AsId(h)),
        };
        if fast_hop != o.next_hop(x) {
            return Some(mismatch(
                x,
                MismatchKind::NextHop,
                fmt_hop(g, fast_hop),
                fmt_hop(g, o.next_hop(x)),
            ));
        }
        if tree.secure[x.index()] != o.secure[x.index()] {
            return Some(mismatch(
                x,
                MismatchKind::SecureFlag,
                tree.secure[x.index()].to_string(),
                o.secure[x.index()].to_string(),
            ));
        }
    }
    None
}

/// Run the full differential check for one `(graph, secure-set,
/// destination)` triple from scratch: fast pipeline vs oracle.
///
/// This is the reproducible form of [`compare`] — it recomputes the
/// context and tree itself, so a `Some` result can be replayed from the
/// triple alone (which is exactly what [`shrink`] does).
pub fn audit<T: TieBreaker + ?Sized>(
    g: &AsGraph,
    dest: AsId,
    secure_set: &SecureSet,
    policy: TreePolicy,
    tiebreaker: &T,
) -> Option<Mismatch> {
    let mut ctx = DestContext::new(g.len());
    ctx.compute(g, dest, tiebreaker);
    let mut tree = RouteTree::new(g.len());
    crate::tree::compute_tree(g, &ctx, secure_set, policy, &mut tree);
    compare(g, &ctx, &tree, secure_set, policy, tiebreaker)
}

/// A minimized failing instance produced by [`shrink`], serialized into
/// a replayable artifact.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Counterexample {
    /// The minimized graph in serial-2 text form.
    pub graph_text: String,
    /// ASN of the failing destination.
    pub dest_asn: u32,
    /// ASNs of the secure ASes in the minimized deployment state.
    pub secure_asns: Vec<u32>,
    /// The tree policy the failure was observed under.
    pub stubs_prefer_secure: bool,
    /// The divergence observed on the minimized instance (or, when
    /// `reproduced` is false, on the original instance).
    pub mismatch: Mismatch,
    /// Node count of the minimized graph.
    pub nodes: usize,
    /// Edge count of the minimized graph.
    pub edges: usize,
    /// Whether the failure reproduced when the triple was replayed from
    /// scratch. `false` means the original divergence was transient
    /// (e.g. injected corruption) and the artifact records the
    /// *unshrunk* instance for forensics.
    pub reproduced: bool,
    /// Whether minimization stopped early because the audit budget ran
    /// out (the instance may not be minimal).
    pub budget_exhausted: bool,
}

impl Counterexample {
    /// Render the counterexample as a self-contained text artifact: a
    /// commented header describing how to replay it, followed by the
    /// minimized graph in serial-2 form.
    pub fn artifact(&self) -> String {
        let mut s = String::new();
        s.push_str("# sbgp-diffcheck counterexample v1\n");
        s.push_str(&format!("# mismatch: {}\n", self.mismatch));
        s.push_str(&format!("# dest-asn: {}\n", self.dest_asn));
        let secure = if self.secure_asns.is_empty() {
            "-".to_string()
        } else {
            self.secure_asns
                .iter()
                .map(|a| a.to_string())
                .collect::<Vec<_>>()
                .join(" ")
        };
        s.push_str(&format!("# secure-asns: {secure}\n"));
        s.push_str(&format!(
            "# stubs-prefer-secure: {}\n",
            self.stubs_prefer_secure
        ));
        s.push_str(&format!(
            "# reproduced: {} (false = transient divergence; graph below is unshrunk)\n",
            self.reproduced
        ));
        if self.budget_exhausted {
            s.push_str("# note: shrink budget exhausted; instance may not be minimal\n");
        }
        s.push_str(&format!(
            "# replay: audit(graph, dest, secure, policy) on the {} nodes / {} edges below\n",
            self.nodes, self.edges
        ));
        s.push_str(&self.graph_text);
        s
    }
}

/// Rebuild `g` with edge number `skip` (in [`AsGraph::edges`] order)
/// removed. Node ids and ASNs are preserved exactly. Removing an edge
/// cannot violate GR1, so the build only fails on internal
/// inconsistencies — reported as `None` and skipped by the caller.
fn without_edge(g: &AsGraph, skip: usize) -> Option<AsGraph> {
    let mut b = AsGraphBuilder::with_capacity(g.len(), g.num_edges().saturating_sub(1));
    for n in g.nodes() {
        b.add_node(g.asn(n));
    }
    for (k, (a, c, rel)) in g.edges().enumerate() {
        if k == skip {
            continue;
        }
        match rel {
            Relationship::Customer => b.add_provider_customer(a, c).ok()?,
            Relationship::Peer => b.add_peer_peer(a, c).ok()?,
            Relationship::Provider => unreachable!("edges() never emits Provider"),
        }
    }
    b.build().ok()
}

/// Rebuild `g` keeping only nodes with at least one edge plus `dest`,
/// remapping the secure set and destination to the new dense ids.
/// Returns `None` if nothing would be pruned.
fn without_isolated(
    g: &AsGraph,
    secure: &SecureSet,
    dest: AsId,
) -> Option<(AsGraph, SecureSet, AsId)> {
    let keep: Vec<AsId> = g
        .nodes()
        .filter(|&n| n == dest || g.degree(n) > 0)
        .collect();
    if keep.len() == g.len() {
        return None;
    }
    let mut b = AsGraphBuilder::with_capacity(keep.len(), g.num_edges());
    let mut map = vec![None; g.len()];
    for &n in &keep {
        map[n.index()] = Some(b.add_node(g.asn(n)));
    }
    for (a, c, rel) in g.edges() {
        let (na, nc) = (map[a.index()]?, map[c.index()]?);
        match rel {
            Relationship::Customer => b.add_provider_customer(na, nc).ok()?,
            Relationship::Peer => b.add_peer_peer(na, nc).ok()?,
            Relationship::Provider => unreachable!("edges() never emits Provider"),
        }
    }
    let g2 = b.build().ok()?;
    let mut s2 = SecureSet::new(g2.len());
    for n in secure.iter() {
        if let Some(m) = map[n.index()] {
            s2.set(m, true);
        }
    }
    let d2 = map[dest.index()]?;
    Some((g2, s2, d2))
}

/// Serialize a graph to serial-2 text (infallible for in-memory sinks).
fn graph_text(g: &AsGraph) -> String {
    let mut buf = Vec::new();
    io::write_graph(g, &mut buf).expect("in-memory serialization cannot fail");
    String::from_utf8(buf).expect("serial-2 output is ASCII")
}

/// Package the current instance as a [`Counterexample`].
fn package(
    g: &AsGraph,
    secure: &SecureSet,
    dest: AsId,
    policy: TreePolicy,
    mismatch: Mismatch,
    reproduced: bool,
    budget_exhausted: bool,
) -> Counterexample {
    Counterexample {
        graph_text: graph_text(g),
        dest_asn: g.asn(dest),
        secure_asns: secure.iter().map(|n| g.asn(n)).collect(),
        stubs_prefer_secure: policy.stubs_prefer_secure,
        mismatch,
        nodes: g.len(),
        edges: g.num_edges(),
        reproduced,
        budget_exhausted,
    }
}

/// Greedily shrink a failing `(graph, secure-set, destination)` triple
/// to a locally minimal counterexample.
///
/// `check` is the failure predicate (normally a closure around
/// [`audit`]); `initial` is the divergence observed on the full
/// instance. The shrinker first replays `check` on the full triple — if
/// the failure does not reproduce (a transient divergence, e.g.
/// injected memory corruption), it returns the unshrunk instance marked
/// `reproduced: false`. Otherwise it iterates to a fixpoint:
///
/// 1. try removing each edge, keeping removals that still fail;
/// 2. try clearing each secure bit, keeping clears that still fail;
/// 3. finally prune isolated nodes (verifying the failure survives).
///
/// Every predicate evaluation counts against `max_audits`; when the
/// budget runs out the current (possibly non-minimal) instance is
/// returned with `budget_exhausted: true`.
pub fn shrink<F>(
    g: &AsGraph,
    secure: &SecureSet,
    dest: AsId,
    policy: TreePolicy,
    initial: Mismatch,
    check: F,
    max_audits: usize,
) -> Counterexample
where
    F: Fn(&AsGraph, &SecureSet, AsId) -> Option<Mismatch>,
{
    let mut audits = 0usize;
    let spent = |audits: &mut usize| {
        *audits += 1;
        *audits > max_audits
    };

    if spent(&mut audits) {
        return package(g, secure, dest, policy, initial, false, true);
    }
    let Some(mut last) = check(g, secure, dest) else {
        // Transient: the divergence does not reproduce from the triple.
        return package(g, secure, dest, policy, initial, false, false);
    };

    let mut cur_g = g.clone();
    let mut cur_secure = secure.clone();
    let mut cur_dest = dest;
    let mut exhausted = false;

    'outer: loop {
        let mut progressed = false;

        // Pass 1: drop edges one at a time.
        let mut k = 0;
        while k < cur_g.num_edges() {
            if spent(&mut audits) {
                exhausted = true;
                break 'outer;
            }
            if let Some(g2) = without_edge(&cur_g, k) {
                if let Some(m) = check(&g2, &cur_secure, cur_dest) {
                    cur_g = g2;
                    last = m;
                    progressed = true;
                    // Do not advance k: edge k now names the next edge.
                    continue;
                }
            }
            k += 1;
        }

        // Pass 2: clear secure bits one at a time.
        for s in cur_secure.iter().collect::<Vec<_>>() {
            if spent(&mut audits) {
                exhausted = true;
                break 'outer;
            }
            cur_secure.set(s, false);
            if let Some(m) = check(&cur_g, &cur_secure, cur_dest) {
                last = m;
                progressed = true;
            } else {
                cur_secure.set(s, true);
            }
        }

        if !progressed {
            break;
        }
    }

    // Final pass: prune isolated nodes, keeping the pruned instance
    // only if the failure survives the id remap.
    if !exhausted {
        if let Some((g2, s2, d2)) = without_isolated(&cur_g, &cur_secure, cur_dest) {
            if spent(&mut audits) {
                exhausted = true;
            } else if let Some(m) = check(&g2, &s2, d2) {
                cur_g = g2;
                cur_secure = s2;
                cur_dest = d2;
                last = m;
            }
        }
    }

    package(&cur_g, &cur_secure, cur_dest, policy, last, true, exhausted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tiebreak::LowestAsnTieBreak;

    fn diamond() -> (AsGraph, AsId, AsId, AsId, AsId) {
        let mut b = AsGraphBuilder::new();
        let s = b.add_node(10);
        let ia = b.add_node(20);
        let ib = b.add_node(30);
        let d = b.add_node(40);
        b.add_provider_customer(s, ia).unwrap();
        b.add_provider_customer(s, ib).unwrap();
        b.add_provider_customer(ia, d).unwrap();
        b.add_provider_customer(ib, d).unwrap();
        let g = b.build().unwrap();
        (g, s, ia, ib, d)
    }

    #[test]
    fn healthy_instance_passes_audit() {
        let (g, _, _, ib, d) = diamond();
        let mut secure = SecureSet::new(g.len());
        for x in [ib, d] {
            secure.set(x, true);
        }
        for dest in g.nodes() {
            assert_eq!(
                audit(&g, dest, &secure, TreePolicy::default(), &LowestAsnTieBreak),
                None
            );
        }
    }

    #[test]
    fn corrupted_tree_is_detected_by_compare() {
        let (g, s, _, ib, d) = diamond();
        let mut ctx = DestContext::new(g.len());
        ctx.compute(&g, d, &LowestAsnTieBreak);
        let secure = SecureSet::new(g.len());
        let mut tree = RouteTree::new(g.len());
        crate::tree::compute_tree(&g, &ctx, &secure, TreePolicy::default(), &mut tree);
        // Flip s's next hop to its other (legal but wrong) tiebreak
        // member: the oracle picks AS20 in the insecure world.
        tree.next_hop[s.index()] = ib.0;
        let m = compare(
            &g,
            &ctx,
            &tree,
            &secure,
            TreePolicy::default(),
            &LowestAsnTieBreak,
        )
        .expect("corruption must be detected");
        assert_eq!(m.kind, MismatchKind::NextHop);
        assert_eq!(m.node_asn, 10);
    }

    #[test]
    fn transient_failure_yields_unshrunk_artifact() {
        let (g, _, _, _, d) = diamond();
        let secure = SecureSet::new(g.len());
        let initial = Mismatch {
            dest_asn: g.asn(d),
            node_asn: 10,
            kind: MismatchKind::NextHop,
            fast: "AS30".into(),
            oracle: "AS20".into(),
        };
        // A healthy check never fails, so the shrink reports transient.
        let cex = shrink(
            &g,
            &secure,
            d,
            TreePolicy::default(),
            initial.clone(),
            |g2, s2, d2| audit(g2, d2, s2, TreePolicy::default(), &LowestAsnTieBreak),
            1_000,
        );
        assert!(!cex.reproduced);
        assert_eq!(cex.mismatch, initial);
        assert_eq!(cex.nodes, g.len());
        assert!(cex.artifact().contains("reproduced: false"));
    }

    #[test]
    fn shrink_minimizes_a_reproducible_failure() {
        // Failure predicate independent of diffcheck itself: "node AS10
        // can still reach AS40". Minimal instances under edge/node
        // shrinking are a bare chain, so the shrinker must strictly
        // reduce the diamond.
        let (g, _, _, _, d) = diamond();
        let secure = SecureSet::new(g.len());
        let fake = |msg: &str| Mismatch {
            dest_asn: 40,
            node_asn: 10,
            kind: MismatchKind::PathLength,
            fast: msg.to_string(),
            oracle: "-".into(),
        };
        let initial = fake("initial");
        let check = move |g2: &AsGraph, _s: &SecureSet, d2: AsId| {
            let src = g2.node_by_asn(10)?;
            let mut ctx = DestContext::new(g2.len());
            ctx.compute(g2, d2, &LowestAsnTieBreak);
            ctx.route_len(src).map(|_| fake("still reachable"))
        };
        let cex = shrink(&g, &secure, d, TreePolicy::default(), initial, check, 1_000);
        assert!(cex.reproduced);
        assert!(!cex.budget_exhausted);
        assert!(cex.edges < g.num_edges(), "edges must shrink");
        assert!(cex.nodes < g.len(), "isolated node must be pruned");
        assert_eq!(cex.dest_asn, 40);
        // The artifact's graph must parse back.
        let g2 = io::read_graph(std::io::Cursor::new(cex.graph_text.as_bytes())).unwrap();
        assert_eq!(g2.len(), cex.nodes);
        assert_eq!(g2.num_edges(), cex.edges);
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let (g, _, _, _, d) = diamond();
        let secure = SecureSet::new(g.len());
        let initial = Mismatch {
            dest_asn: 40,
            node_asn: 10,
            kind: MismatchKind::PathLength,
            fast: "x".into(),
            oracle: "y".into(),
        };
        let always_fail = |_: &AsGraph, _: &SecureSet, _: AsId| Some(initial.clone());
        let cex = shrink(
            &g,
            &secure,
            d,
            TreePolicy::default(),
            initial.clone(),
            always_fail,
            2,
        );
        assert!(cex.budget_exhausted);
        assert!(cex.artifact().contains("shrink budget exhausted"));
    }
}
