//! Per-destination "frozen" routing information (Observation C.1).
//!
//! Under the Appendix A policies, the *class* (customer / peer /
//! provider) and *length* of every node's best route to a destination
//! do not depend on which ASes are secure — security only picks among
//! the equally-good next hops of the **tiebreak set**. [`DestContext`]
//! computes all three in `O(|V|+|E|)` per destination with the
//! three-stage BFS of [15] (Goldberg et al.), as adapted in Appendix
//! C.2:
//!
//! 1. **customer routes** — BFS from the destination along
//!    customer→provider edges (a node's customer route descends
//!    through a chain of customers to `d`);
//! 2. **peer routes** — one peer hop onto a customer route (or a
//!    direct peering with `d`);
//! 3. **provider routes** — level-order BFS along provider→customer
//!    edges seeded by every node settled in stages 1–2 (GR2 lets a
//!    node export its best route, of any class, to its customers).

use crate::tiebreak::TieBreaker;
use sbgp_asgraph::{AsGraph, AsId, GraphError, MAX_GRAPH_NODES};

/// Length sentinel for unreachable nodes.
pub(crate) const UNREACH: u16 = u16::MAX;

/// Read-only access to one destination's frozen routing information
/// (Observation C.1): best-route class, length, tiebreak set, and
/// processing order per node.
///
/// Implemented by [`DestContext`] (owned, recomputed per destination)
/// and by [`AtlasView`](crate::AtlasView) (borrowed from the shared
/// [`RoutingAtlas`](crate::RoutingAtlas) arenas). The tree, flow, and
/// audit layers are generic over this trait so the same code path
/// serves both.
pub trait RouteContext {
    /// The destination this context describes.
    fn dest(&self) -> AsId;
    /// Best-route length of `n` (`None` if unreachable; 0 for the
    /// destination itself).
    fn route_len(&self, n: AsId) -> Option<u16>;
    /// Best-route class of `n`.
    fn route_class(&self, n: AsId) -> RouteClass;
    /// The tiebreak set of `n`: equally-good next hops sorted by
    /// tiebreak key (empty for the destination and unreachable nodes).
    fn tiebreak_set(&self, n: AsId) -> &[u32];
    /// Reachable nodes in ascending best-route-length order; the
    /// destination is first.
    fn order(&self) -> &[u32];
    /// Number of reachable nodes, including the destination.
    fn reachable(&self) -> usize {
        self.order().len()
    }
}

/// The class of a node's best route to the current destination,
/// ordered by local preference.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum RouteClass {
    /// This node *is* the destination.
    SelfDest,
    /// Best route's next hop is a customer.
    Customer,
    /// Best route's next hop is a peer.
    Peer,
    /// Best route's next hop is a provider.
    Provider,
    /// No exportable route exists.
    Unreachable,
}

/// Frozen per-destination routing info: every node's best-route class,
/// length, and tiebreak set (sorted by tiebreak key, so entry 0 is the
/// insecure-world choice).
///
/// One `DestContext` is meant to be reused across destinations via
/// [`compute`](Self::compute) — all buffers retain capacity.
#[derive(Clone, Debug)]
pub struct DestContext {
    dest: AsId,
    /// Best-route length per node (`UNREACH` if none).
    pub(crate) len: Vec<u16>,
    pub(crate) class: Vec<RouteClass>,
    /// CSR tiebreak sets: node `i`'s equally-good next hops are
    /// `tb[tb_off[i]..tb_off[i+1]]`, sorted by tiebreak key.
    pub(crate) tb_off: Vec<u32>,
    pub(crate) tb: Vec<u32>,
    /// Reachable nodes (including the destination) in ascending order
    /// of best-route length — the processing order of the fast routing
    /// tree algorithm.
    pub(crate) order: Vec<u32>,
    // --- reusable scratch (flat buffers only; the stage-3 bucket
    // queue is a CSR counting sort plus two frontier queues, so a
    // compute never allocates nested vectors) ---
    seed_off: Vec<u32>,
    seed_cursor: Vec<u32>,
    seeds: Vec<u32>,
    frontier: Vec<u32>,
    next_frontier: Vec<u32>,
    key_scratch: Vec<(u64, u32)>,
}

impl DestContext {
    /// An empty context for an `n`-node graph (call
    /// [`compute`](Self::compute) before use).
    ///
    /// # Panics
    /// Panics if `n` exceeds [`MAX_GRAPH_NODES`] (path lengths and the
    /// atlas's packed node ids are `u16`; the paper's 36K-node graph
    /// fits comfortably). Use [`try_new`](Self::try_new) for a typed
    /// error instead — graph producers ([`sbgp_asgraph::gen`], the
    /// [`sbgp_asgraph::io`] loaders) already reject oversized graphs
    /// at the boundary, so this panic marks an internal bug.
    pub fn new(n: usize) -> Self {
        match Self::try_new(n) {
            Ok(ctx) => ctx,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`new`](Self::new): a diagnostic
    /// [`GraphError::InvalidParam`] instead of a panic when `n` exceeds
    /// [`MAX_GRAPH_NODES`].
    pub fn try_new(n: usize) -> Result<Self, GraphError> {
        if n > MAX_GRAPH_NODES {
            return Err(GraphError::InvalidParam {
                param: "nodes",
                message: format!(
                    "graph has {n} nodes, more than the supported {MAX_GRAPH_NODES}; \
                     route lengths and atlas node ids are stored as u16"
                ),
            });
        }
        Ok(DestContext {
            dest: AsId(0),
            len: vec![UNREACH; n],
            class: vec![RouteClass::Unreachable; n],
            tb_off: Vec::with_capacity(n + 1),
            tb: Vec::new(),
            order: Vec::with_capacity(n),
            seed_off: Vec::new(),
            seed_cursor: Vec::new(),
            seeds: Vec::new(),
            frontier: Vec::new(),
            next_frontier: Vec::new(),
            key_scratch: Vec::new(),
        })
    }

    /// The destination this context currently describes.
    pub fn dest(&self) -> AsId {
        self.dest
    }

    /// Best-route length of `n` (`None` if unreachable; 0 for the
    /// destination itself).
    pub fn route_len(&self, n: AsId) -> Option<u16> {
        match self.len[n.index()] {
            UNREACH => None,
            l => Some(l),
        }
    }

    /// Best-route class of `n`.
    pub fn route_class(&self, n: AsId) -> RouteClass {
        self.class[n.index()]
    }

    /// The tiebreak set of `n`: equally-good next hops sorted by
    /// tiebreak key (empty for the destination and unreachable nodes).
    #[inline]
    pub fn tiebreak_set(&self, n: AsId) -> &[u32] {
        let i = n.index();
        &self.tb[self.tb_off[i] as usize..self.tb_off[i + 1] as usize]
    }

    /// Reachable nodes in ascending best-route-length order; the
    /// destination is first.
    #[inline]
    pub fn order(&self) -> &[u32] {
        &self.order
    }

    /// Number of reachable nodes, including the destination.
    pub fn reachable(&self) -> usize {
        self.order.len()
    }

    /// Recompute all per-destination info for destination `d`.
    pub fn compute<T: TieBreaker + ?Sized>(&mut self, g: &AsGraph, d: AsId, tiebreaker: &T) {
        let n = g.len();
        debug_assert_eq!(self.len.len(), n, "context sized for a different graph");
        self.dest = d;
        self.len.fill(UNREACH);
        self.class.fill(RouteClass::Unreachable);

        // --- Stage 1: customer routes (BFS from d along provider edges). ---
        // cust_len is stored directly in `len`; nodes reached here are
        // Customer class (overwritten for d below).
        let mut queue: Vec<u32> = Vec::with_capacity(64);
        self.len[d.index()] = 0;
        self.class[d.index()] = RouteClass::SelfDest;
        queue.push(d.0);
        let mut head = 0;
        while head < queue.len() {
            let x = AsId(queue[head]);
            head += 1;
            let lx = self.len[x.index()];
            for &p in g.providers(x) {
                if self.len[p.index()] == UNREACH {
                    self.len[p.index()] = lx + 1;
                    self.class[p.index()] = RouteClass::Customer;
                    queue.push(p.0);
                }
            }
        }

        // --- Stage 2: peer routes (one peer hop off a customer route
        // or off d itself). Exporters are exactly the nodes settled in
        // stage 1 (class Customer or SelfDest).
        let customer_reachable = queue.clone();
        for &xq in &customer_reachable {
            let x = AsId(xq);
            let lx = self.len[x.index()];
            for &q in g.peers(x) {
                if self.len[q.index()] == UNREACH {
                    self.len[q.index()] = lx + 1;
                    self.class[q.index()] = RouteClass::Peer;
                }
            }
        }

        // --- Stage 3: provider routes (level-order BFS along
        // provider→customer edges, seeded with everything settled so
        // far — GR2 exports any best route to customers). The seeds
        // are counting-sorted by length into one flat CSR buffer
        // (stable, so ascending id within a level), and each level
        // processes its seeds followed by the nodes discovered at that
        // level — the exact order the former nested bucket queue
        // produced, with no nested allocations.
        let mut max_seed = 0usize;
        let mut settled = 0usize;
        for i in 0..n {
            let l = self.len[i];
            if l != UNREACH {
                max_seed = max_seed.max(l as usize);
                settled += 1;
            }
        }
        self.seed_off.clear();
        self.seed_off.resize(max_seed + 2, 0);
        for i in 0..n {
            let l = self.len[i];
            if l != UNREACH {
                self.seed_off[l as usize + 1] += 1;
            }
        }
        for k in 1..self.seed_off.len() {
            self.seed_off[k] += self.seed_off[k - 1];
        }
        self.seed_cursor.clear();
        self.seed_cursor
            .extend_from_slice(&self.seed_off[..self.seed_off.len() - 1]);
        self.seeds.clear();
        self.seeds.resize(settled, 0);
        for i in 0..n {
            let l = self.len[i];
            if l != UNREACH {
                let c = &mut self.seed_cursor[l as usize];
                self.seeds[*c as usize] = i as u32;
                *c += 1;
            }
        }
        self.order.clear();
        self.frontier.clear();
        let mut level = 0usize;
        while level + 1 < self.seed_off.len() || !self.frontier.is_empty() {
            let (s0, s1) = if level + 1 < self.seed_off.len() {
                (
                    self.seed_off[level] as usize,
                    self.seed_off[level + 1] as usize,
                )
            } else {
                (0, 0)
            };
            self.next_frontier.clear();
            for k in s0..s1 {
                let x = AsId(self.seeds[k]);
                debug_assert_eq!(self.len[x.index()] as usize, level);
                self.order.push(x.0);
                for &c in g.customers(x) {
                    if self.len[c.index()] == UNREACH {
                        self.len[c.index()] = (level + 1) as u16;
                        self.class[c.index()] = RouteClass::Provider;
                        self.next_frontier.push(c.0);
                    }
                }
            }
            for k in 0..self.frontier.len() {
                let x = AsId(self.frontier[k]);
                debug_assert_eq!(self.len[x.index()] as usize, level);
                self.order.push(x.0);
                for &c in g.customers(x) {
                    if self.len[c.index()] == UNREACH {
                        self.len[c.index()] = (level + 1) as u16;
                        self.class[c.index()] = RouteClass::Provider;
                        self.next_frontier.push(c.0);
                    }
                }
            }
            std::mem::swap(&mut self.frontier, &mut self.next_frontier);
            level += 1;
        }

        // --- Tiebreak sets. A neighbor m is an equally-good next hop
        // for x (class C, length L) iff len[m] == L-1 and m's best
        // route is exportable to x:
        //   Customer class: m ∈ customers(x), m exports only customer
        //     routes upward → class[m] ∈ {Customer, SelfDest};
        //   Peer class: m ∈ peers(x), same export rule;
        //   Provider class: m ∈ providers(x), any class exports down.
        self.tb_off.clear();
        self.tb.clear();
        self.tb_off.push(0);
        // tb_off is indexed by node id, so build per node (not in order).
        for i in 0..n {
            let x = AsId(i as u32);
            let lx = self.len[i];
            if lx != UNREACH && x != d {
                let want = lx - 1;
                let start = self.tb.len();
                match self.class[i] {
                    RouteClass::Customer => {
                        for &m in g.customers(x) {
                            if self.len[m.index()] == want
                                && matches!(
                                    self.class[m.index()],
                                    RouteClass::Customer | RouteClass::SelfDest
                                )
                            {
                                self.tb.push(m.0);
                            }
                        }
                    }
                    RouteClass::Peer => {
                        for &m in g.peers(x) {
                            if self.len[m.index()] == want
                                && matches!(
                                    self.class[m.index()],
                                    RouteClass::Customer | RouteClass::SelfDest
                                )
                            {
                                self.tb.push(m.0);
                            }
                        }
                    }
                    RouteClass::Provider => {
                        for &m in g.providers(x) {
                            if self.len[m.index()] == want {
                                self.tb.push(m.0);
                            }
                        }
                    }
                    RouteClass::SelfDest | RouteClass::Unreachable => unreachable!(),
                }
                debug_assert!(
                    self.tb.len() > start,
                    "reachable node with empty tiebreak set"
                );
                // Sort the set by tiebreak key; sets are tiny (mean
                // ≈1.2, Figure 10), so this is effectively free.
                if self.tb.len() - start > 1 {
                    self.key_scratch.clear();
                    for &m in &self.tb[start..] {
                        self.key_scratch.push((tiebreaker.key(g, x, AsId(m)), m));
                    }
                    self.key_scratch.sort_unstable();
                    for (k, (_, m)) in self.key_scratch.iter().enumerate() {
                        self.tb[start + k] = *m;
                    }
                }
            }
            self.tb_off.push(self.tb.len() as u32);
        }
    }
}

impl RouteContext for DestContext {
    #[inline]
    fn dest(&self) -> AsId {
        DestContext::dest(self)
    }
    #[inline]
    fn route_len(&self, n: AsId) -> Option<u16> {
        DestContext::route_len(self, n)
    }
    #[inline]
    fn route_class(&self, n: AsId) -> RouteClass {
        DestContext::route_class(self, n)
    }
    #[inline]
    fn tiebreak_set(&self, n: AsId) -> &[u32] {
        DestContext::tiebreak_set(self, n)
    }
    #[inline]
    fn order(&self) -> &[u32] {
        DestContext::order(self)
    }
    #[inline]
    fn reachable(&self) -> usize {
        DestContext::reachable(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tiebreak::LowestAsnTieBreak;
    use sbgp_asgraph::AsGraphBuilder;

    /// Figure-1-like fixture:
    ///
    /// ```text
    ///      t1 ---peer--- t2
    ///     /  \            \
    ///   isp1  isp2         |    (t1,t2 providers of isps; isp2 also
    ///     \   /  \         |     customer of t2)
    ///      stub   s2 ------+     (s2 multihomed to isp2 and t2)
    /// ```
    fn fixture() -> (AsGraph, [AsId; 6]) {
        let mut b = AsGraphBuilder::new();
        let t1 = b.add_node(1);
        let t2 = b.add_node(2);
        let isp1 = b.add_node(11);
        let isp2 = b.add_node(12);
        let stub = b.add_node(21);
        let s2 = b.add_node(22);
        b.add_peer_peer(t1, t2).unwrap();
        b.add_provider_customer(t1, isp1).unwrap();
        b.add_provider_customer(t1, isp2).unwrap();
        b.add_provider_customer(t2, isp2).unwrap();
        b.add_provider_customer(isp1, stub).unwrap();
        b.add_provider_customer(isp2, stub).unwrap();
        b.add_provider_customer(isp2, s2).unwrap();
        b.add_provider_customer(t2, s2).unwrap();
        let g = b.build().unwrap();
        (g, [t1, t2, isp1, isp2, stub, s2])
    }

    #[test]
    fn customer_routes_win() {
        let (g, [t1, t2, isp1, isp2, stub, s2]) = fixture();
        let mut ctx = DestContext::new(g.len());
        ctx.compute(&g, stub, &LowestAsnTieBreak);
        // Providers of stub get customer routes of length 1.
        assert_eq!(ctx.route_class(isp1), RouteClass::Customer);
        assert_eq!(ctx.route_len(isp1), Some(1));
        assert_eq!(ctx.route_class(isp2), RouteClass::Customer);
        // t1 and t2: customer routes of length 2 via their ISP customers.
        assert_eq!(ctx.route_class(t1), RouteClass::Customer);
        assert_eq!(ctx.route_len(t1), Some(2));
        assert_eq!(ctx.route_class(t2), RouteClass::Customer);
        // s2 reaches stub via its provider isp2 (or t2): provider route.
        assert_eq!(ctx.route_class(s2), RouteClass::Provider);
        assert_eq!(ctx.route_len(s2), Some(2));
        assert_eq!(ctx.route_class(stub), RouteClass::SelfDest);
        assert_eq!(ctx.route_len(stub), Some(0));
    }

    #[test]
    fn tiebreak_sets_capture_competition() {
        let (g, [t1, _, isp1, isp2, stub, _]) = fixture();
        let mut ctx = DestContext::new(g.len());
        ctx.compute(&g, stub, &LowestAsnTieBreak);
        // t1 can reach stub via isp1 or isp2, both customer length-2.
        let tb: Vec<u32> = ctx.tiebreak_set(t1).to_vec();
        assert_eq!(tb, vec![isp1.0, isp2.0], "sorted by ASN (11 < 12)");
        // isp1's only choice is the stub itself.
        assert_eq!(ctx.tiebreak_set(isp1), &[stub.0]);
    }

    #[test]
    fn peer_routes_used_when_no_customer_route() {
        let (g, [t1, t2, isp1, ..]) = fixture();
        let mut ctx = DestContext::new(g.len());
        // Destination isp1: t1 has a customer route (length 1);
        // t2 has a peer route via t1 (length 2).
        ctx.compute(&g, isp1, &LowestAsnTieBreak);
        assert_eq!(ctx.route_class(t1), RouteClass::Customer);
        assert_eq!(ctx.route_class(t2), RouteClass::Peer);
        assert_eq!(ctx.route_len(t2), Some(2));
    }

    #[test]
    fn valley_free_no_peer_to_peer_transit() {
        // Destination behind t2 only reachable from t1 via the peer
        // edge; a customer of t1 must climb: customer -> t1 (provider
        // route), then t1 -> t2 peer, t2 -> dest customer. Check a
        // stub of isp1 reaches s2 with a provider route of length 4.
        let (g, [.., stub, s2]) = fixture();
        let mut ctx = DestContext::new(g.len());
        ctx.compute(&g, s2, &LowestAsnTieBreak);
        assert_eq!(ctx.route_class(stub), RouteClass::Provider);
        // stub -> isp2 -> s2 is length 2 (isp2 is s2's provider with a
        // customer route).
        assert_eq!(ctx.route_len(stub), Some(2));
    }

    #[test]
    fn order_is_ascending_and_complete() {
        let (g, [_, _, _, _, stub, _]) = fixture();
        let mut ctx = DestContext::new(g.len());
        ctx.compute(&g, stub, &LowestAsnTieBreak);
        let order = ctx.order();
        assert_eq!(order.len(), g.len(), "all nodes reachable");
        let mut prev = 0;
        for &x in order {
            let l = ctx.route_len(AsId(x)).unwrap();
            assert!(l >= prev);
            prev = l;
        }
        assert_eq!(order[0], stub.0);
    }

    #[test]
    fn disconnected_node_unreachable() {
        let mut b = AsGraphBuilder::new();
        let a = b.add_node(1);
        let c = b.add_node(2);
        let lone = b.add_node(3);
        b.add_provider_customer(a, c).unwrap();
        let g = b.build().unwrap();
        let mut ctx = DestContext::new(g.len());
        ctx.compute(&g, c, &LowestAsnTieBreak);
        assert_eq!(ctx.route_class(lone), RouteClass::Unreachable);
        assert_eq!(ctx.route_len(lone), None);
        assert!(ctx.tiebreak_set(lone).is_empty());
        assert_eq!(ctx.reachable(), 2);
    }

    #[test]
    fn try_new_rejects_oversized_graphs() {
        let err = DestContext::try_new(MAX_GRAPH_NODES + 1).unwrap_err();
        assert!(
            matches!(err, GraphError::InvalidParam { param: "nodes", .. }),
            "want InvalidParam, got {err:?}"
        );
        assert!(DestContext::try_new(MAX_GRAPH_NODES).is_ok());
    }

    #[test]
    fn reuse_across_destinations() {
        let (g, [t1, _, isp1, _, stub, s2]) = fixture();
        let mut ctx = DestContext::new(g.len());
        ctx.compute(&g, stub, &LowestAsnTieBreak);
        ctx.compute(&g, s2, &LowestAsnTieBreak);
        assert_eq!(ctx.dest(), s2);
        // Old destination's info fully replaced.
        assert_eq!(ctx.route_len(s2), Some(0));
        assert_eq!(ctx.route_class(stub), RouteClass::Provider);
        ctx.compute(&g, isp1, &LowestAsnTieBreak);
        assert_eq!(ctx.route_class(t1), RouteClass::Customer);
    }
}
