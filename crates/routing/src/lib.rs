//! # sbgp-routing
//!
//! The Gao–Rexford routing model of the paper's Appendix A, plus the
//! optimized algorithms of Appendix C that make the `O(|V|³)`
//! deployment simulation feasible.
//!
//! ## The routing model (Appendix A)
//!
//! Each AS ranks outgoing paths to a destination by:
//!
//! 1. **LP** — local preference: customer routes ≻ peer routes ≻
//!    provider routes;
//! 2. **SP** — shortest AS-path among the most-preferred class;
//! 3. **SecP** — if the node is *secure*, prefer fully secure paths
//!    among the remaining ties (the paper's key deployment lever,
//!    Section 2.2.2);
//! 4. **TB** — a deterministic tiebreak (hash `H(a,b)` in the paper's
//!    simulations; lowest-ASN in the appendix gadget constructions —
//!    both provided via [`TieBreaker`]).
//!
//! Export follows **GR2**: a route learned from a neighbor is
//! re-announced to a neighbor `a` iff the next hop or `a` is a
//! customer.
//!
//! ## Observation C.1 and the fast routing tree
//!
//! Under this model the *class* and *length* of every node's best route
//! to a destination are independent of which ASes are secure — only
//! the TB choice *within* the tiebreak set moves. [`DestContext`]
//! precomputes, per destination, each node's route class, length, and
//! tiebreak set (three-stage BFS, `O(|V|+|E|)`). [`compute_tree`] then
//! resolves the actual next-hop forest for a given secure set in
//! `O(t·|V|)` — the Appendix C.2 algorithm.
//!
//! ## Validation
//!
//! [`oracle`] contains a deliberately naive message-passing BGP
//! simulator (full path vectors, iterate-to-fixpoint). It exists so
//! tests can check the fast algorithms against an independent
//! implementation of the Appendix A semantics on small graphs.
//!
//! # Example
//!
//! ```
//! use sbgp_asgraph::AsGraphBuilder;
//! use sbgp_routing::{
//!     compute_tree, DestContext, LowestAsnTieBreak, RouteTree, SecureSet, TreePolicy,
//! };
//!
//! // A diamond: source s can reach stub d via ISP a (ASN 20) or b (ASN 30).
//! let mut builder = AsGraphBuilder::new();
//! let s = builder.add_node(10);
//! let a = builder.add_node(20);
//! let b = builder.add_node(30);
//! let d = builder.add_node(40);
//! builder.add_provider_customer(s, a).unwrap();
//! builder.add_provider_customer(s, b).unwrap();
//! builder.add_provider_customer(a, d).unwrap();
//! builder.add_provider_customer(b, d).unwrap();
//! let graph = builder.build().unwrap();
//!
//! // Frozen per-destination info (Observation C.1), then the fast tree.
//! let mut ctx = DestContext::new(graph.len());
//! ctx.compute(&graph, d, &LowestAsnTieBreak);
//! assert_eq!(ctx.tiebreak_set(s), &[a.0, b.0]); // two equally-good paths
//!
//! // With s, b, and d secure, the SecP tiebreak moves s onto b's path.
//! let mut secure = SecureSet::new(graph.len());
//! for x in [s, b, d] { secure.set(x, true); }
//! let mut tree = RouteTree::new(graph.len());
//! compute_tree(&graph, &ctx, &secure, TreePolicy::default(), &mut tree);
//! assert_eq!(tree.next_hop[s.index()], b.0);
//! assert!(tree.secure[s.index()]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod atlas;
mod context;
mod delta;
mod flows;
mod secure;
mod tiebreak;
mod tree;

pub mod census;
pub mod diffcheck;
pub mod oracle;
pub mod scenario_oracle;
pub mod threat;

pub use atlas::{AtlasScratch, AtlasStats, AtlasView, RoutingAtlas};
pub use context::{DestContext, RouteClass, RouteContext};
pub use delta::{delta_project, DeltaOutcome, DeltaScratch, TbDependents};
pub use flows::{
    accumulate_flows, add_utilities, flows_and_target_utility, fold_utilities, utilities_of,
    UtilityAccumulator,
};
pub use secure::SecureSet;
pub use threat::{AttackModel, ScenarioOutcome, ScenarioPolicy, SecurityRank, Verdict};
pub use tiebreak::{HashTieBreak, LowestAsnTieBreak, TieBreaker};
pub use tree::{compute_tree, extract_path, RouteTree, TreePolicy, NO_NEXT_HOP};
