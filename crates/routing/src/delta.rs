//! Incremental delta projection for candidate flips (Appendix C.4-3).
//!
//! A candidate ISP's projected utility `u_n(¬S_n, S_−n)` differs from
//! the base state by a *single* secure-set flip (plus the simplex
//! upgrade of its insecure stub customers). By Observation C.1 the
//! flip cannot move route classes, lengths, or tiebreak sets — only
//! the SecP choice *within* each tiebreak set. A node's `compute_tree`
//! decision reads exactly two inputs: its own secure bit and the
//! path-security of its tiebreak-set members, so the set of nodes
//! whose decision can change is the closure of the flipped nodes under
//! the **reverse tiebreak relation** — `n`'s subtree of the base
//! routing tree plus the re-attachment frontier, discovered level by
//! level. Everything outside that closure provably keeps its base
//! next hop, path security, and (by the same argument one level up)
//! its base flow.
//!
//! [`delta_project`] exploits this: starting from the flips it repairs
//! only the dirty decisions (ascending route-length order, exactly
//! mirroring [`compute_tree`]'s scan), then repairs only the dirty
//! flows (descending order, exactly mirroring
//! [`flows_and_target_utility`]'s scan), and reads the candidate's
//! projected `(u_out, u_in)` off the repaired values. Because every
//! repaired node re-performs the *same* floating-point fold over the
//! *same* operands in the *same* order as the full recompute — the
//! per-node dependent lists are materialized in reverse-scan order by
//! [`TbDependents`] — the result is **bit-identical** to running
//! [`compute_tree`] + [`flows_and_target_utility`] from scratch, for
//! every tiebreaker, policy, and graph. The conformance suite in
//! `sbgp-core` (`tests/delta_conformance.rs`) proves this with exact
//! `==` over randomized worlds.
//!
//! [`compute_tree`]: crate::compute_tree
//! [`flows_and_target_utility`]: crate::flows_and_target_utility

use crate::context::{RouteClass, RouteContext};
use crate::secure::SecureSet;
use crate::tree::{RouteTree, TreePolicy};
use sbgp_asgraph::{AsGraph, AsId, Weights};

/// The reverse tiebreak relation for one destination, in CSR form:
/// `dependents(m)` is every node `x` with `m ∈ tiebreak_set(x)`.
///
/// Two properties make this the delta kernel's only index:
///
/// * **completeness** — a node's tree decision reads only its
///   tiebreak-set members' path security, so a security change at `m`
///   can affect exactly `dependents(m)` (all at route length
///   `len(m) + 1`); and a node's next hop is always a tiebreak-set
///   member, so the base-tree *children* of `m` are a subset of
///   `dependents(m)`.
/// * **order** — each list is materialized in the order the nodes
///   appear in the **reverse** of [`RouteContext::order`], which is
///   the order the flow scan visits them. Folding a filtered
///   dependent list therefore reproduces the full scan's
///   floating-point addition order operand for operand.
///
/// Dependent sets are deployment-state-independent (Observation C.1):
/// one build per destination serves every candidate projection.
#[derive(Clone, Debug)]
pub struct TbDependents {
    off: Vec<u32>,
    dep: Vec<u32>,
    /// Scratch for the counting sort (kept across builds).
    cursor: Vec<u32>,
}

impl TbDependents {
    /// An empty index for an `n`-node graph (call
    /// [`build`](Self::build) before use).
    pub fn new(n: usize) -> Self {
        TbDependents {
            off: vec![0; n + 1],
            dep: Vec::new(),
            cursor: vec![0; n],
        }
    }

    /// (Re)build the index for `ctx`'s destination.
    pub fn build<C: RouteContext + ?Sized>(&mut self, ctx: &C) {
        let n = self.off.len() - 1;
        debug_assert_eq!(self.cursor.len(), n, "index sized for a different graph");
        self.off.fill(0);
        for &xi in ctx.order() {
            let x = AsId(xi);
            for &m in ctx.tiebreak_set(x) {
                self.off[m as usize + 1] += 1;
            }
        }
        for k in 1..=n {
            self.off[k] += self.off[k - 1];
        }
        self.cursor.copy_from_slice(&self.off[..n]);
        self.dep.clear();
        self.dep.resize(self.off[n] as usize, 0);
        // Reverse-scan order: the flow pass iterates order() backwards,
        // so each dependent list must list its members in that order.
        for &xi in ctx.order().iter().rev() {
            let x = AsId(xi);
            for &m in ctx.tiebreak_set(x) {
                let c = &mut self.cursor[m as usize];
                self.dep[*c as usize] = xi;
                *c += 1;
            }
        }
    }

    /// Nodes whose tiebreak set contains `m`, in reverse-scan order.
    #[inline]
    pub fn dependents(&self, m: AsId) -> &[u32] {
        let i = m.index();
        &self.dep[self.off[i] as usize..self.off[i + 1] as usize]
    }
}

/// Epoch-stamped scratch for [`delta_project`]: dense arrays validated
/// by a generation counter, so starting a new projection is `O(1)`
/// instead of `O(|V|)` clears. One per worker thread, reused across
/// every (candidate, destination) pair.
#[derive(Clone, Debug)]
pub struct DeltaScratch {
    epoch: u32,
    /// Decision-phase dirty marks.
    dirty_at: Vec<u32>,
    /// Repaired path-security bits (valid when `sec_at == epoch`).
    sec_at: Vec<u32>,
    sec_new: Vec<bool>,
    /// Repaired next hops (valid when `nh_at == epoch`).
    nh_at: Vec<u32>,
    nh_new: Vec<u32>,
    /// Repaired flows (valid when `flow_at == epoch`).
    flow_at: Vec<u32>,
    flow_new: Vec<f64>,
    /// Per-route-length work queues for the decision phase (ascending)
    /// and the flow phase (descending).
    levels: Vec<Vec<u32>>,
    flow_levels: Vec<Vec<u32>>,
    /// Nodes whose next hop actually changed (flow-phase seeds).
    nh_changed: Vec<u32>,
}

impl DeltaScratch {
    /// Fresh scratch for an `n`-node graph.
    pub fn new(n: usize) -> Self {
        DeltaScratch {
            epoch: 0,
            dirty_at: vec![0; n],
            sec_at: vec![0; n],
            sec_new: vec![false; n],
            nh_at: vec![0; n],
            nh_new: vec![0; n],
            flow_at: vec![0; n],
            flow_new: vec![0.0; n],
            levels: Vec::new(),
            flow_levels: Vec::new(),
            nh_changed: Vec::new(),
        }
    }

    /// Start a new projection epoch (invalidates every stamp).
    fn begin(&mut self) {
        if self.epoch == u32::MAX {
            // Practically unreachable; reset the stamps honestly.
            self.dirty_at.fill(0);
            self.sec_at.fill(0);
            self.nh_at.fill(0);
            self.flow_at.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        for b in &mut self.levels {
            b.clear();
        }
        for b in &mut self.flow_levels {
            b.clear();
        }
        self.nh_changed.clear();
    }
}

/// What a successful [`delta_project`] did.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DeltaOutcome {
    /// The candidate's projected `(u_out, u_in)` contribution for this
    /// destination — bit-identical to the full recompute.
    pub u_out: f64,
    /// See [`u_out`](Self::u_out).
    pub u_in: f64,
    /// Decision + flow repairs performed (the delta's touched-node
    /// count; the full recompute touches `ctx.reachable()` twice).
    pub touched: usize,
}

/// Push `x` into the level bucket for `len`, growing the bucket list
/// as needed.
#[inline]
fn bucket_push(levels: &mut Vec<Vec<u32>>, len: usize, x: u32) {
    if levels.len() <= len {
        levels.resize_with(len + 1, Vec::new);
    }
    levels[len].push(x);
}

/// Project the candidate's `(u_out, u_in)` for one destination by
/// repairing only the part of the base routing tree and flows the
/// flips can reach, instead of recomputing both from scratch.
///
/// Inputs are the destination's frozen context, its [`TbDependents`]
/// index, the **base-state** tree and flows (`base_tree` /
/// `base_flow`, exactly as produced by
/// [`compute_tree`](crate::compute_tree) +
/// [`accumulate_flows`](crate::accumulate_flows)), and the **flipped**
/// secure set together with the flip list (the candidate plus any
/// simplex-upgraded stubs).
///
/// Returns `None` — no value, caller falls back to the full recompute
/// — once more than `max_touched` node repairs have been performed
/// (pass `usize::MAX` to disable the cutoff; the result is exact
/// either way, the cutoff only bounds wasted work when the affected
/// region approaches the whole graph).
#[allow(clippy::too_many_arguments)]
pub fn delta_project<C: RouteContext + ?Sized>(
    g: &AsGraph,
    ctx: &C,
    deps: &TbDependents,
    base_tree: &RouteTree,
    base_flow: &[f64],
    flipped: &SecureSet,
    flips: &[AsId],
    policy: TreePolicy,
    weights: &Weights,
    target: AsId,
    max_touched: usize,
    scratch: &mut DeltaScratch,
) -> Option<DeltaOutcome> {
    scratch.begin();
    let s = scratch;
    let epoch = s.epoch;
    let d = ctx.dest();
    let mut touched = 0usize;

    // --- Seed the decision phase. A flip changes exactly one decision
    // input: the flipped node's own secure bit (and, for the
    // destination, the root of every path's security).
    for &f in flips {
        if f == d {
            let new_sec = flipped.get(d);
            if new_sec != base_tree.secure[d.index()] {
                s.sec_at[d.index()] = epoch;
                s.sec_new[d.index()] = new_sec;
                for &x in deps.dependents(d) {
                    if s.dirty_at[x as usize] != epoch {
                        s.dirty_at[x as usize] = epoch;
                        bucket_push(&mut s.levels, 1, x);
                    }
                }
            }
            continue;
        }
        let Some(len) = ctx.route_len(f) else {
            // Unreachable flips have no decision and no dependents.
            continue;
        };
        if s.dirty_at[f.index()] != epoch {
            s.dirty_at[f.index()] = epoch;
            bucket_push(&mut s.levels, len as usize, f.0);
        }
    }

    // --- Decision phase: repair dirty nodes in ascending route-length
    // order (tiebreak members sit one level down, so every input is
    // final when read), mirroring compute_tree's per-node logic
    // exactly. A repaired node whose path security changed dirties its
    // dependents one level up.
    #[inline]
    fn sec_of(s: &DeltaScratch, base_tree: &RouteTree, epoch: u32, m: u32) -> bool {
        if s.sec_at[m as usize] == epoch {
            s.sec_new[m as usize]
        } else {
            base_tree.secure[m as usize]
        }
    }
    let mut level = 1usize;
    while level < s.levels.len() {
        // Take the current bucket out so deeper buckets stay pushable;
        // dependents land strictly at `level + 1`, never back here.
        let cur = std::mem::take(&mut s.levels[level]);
        for &xu in &cur {
            let x = AsId(xu);
            touched += 1;
            if touched > max_touched {
                s.levels[level] = cur;
                return None;
            }
            let tb = ctx.tiebreak_set(x);
            let node_secure = flipped.get(x);
            let applies_secp = node_secure && (policy.stubs_prefer_secure || !g.is_stub(x));
            let mut chosen = tb[0];
            if applies_secp && !sec_of(s, base_tree, epoch, chosen) {
                if let Some(&m) = tb.iter().find(|&&m| sec_of(s, base_tree, epoch, m)) {
                    chosen = m;
                }
            }
            let new_secure = node_secure && sec_of(s, base_tree, epoch, chosen);
            s.nh_at[x.index()] = epoch;
            s.nh_new[x.index()] = chosen;
            if chosen != base_tree.next_hop[x.index()] {
                s.nh_changed.push(xu);
            }
            if new_secure != base_tree.secure[x.index()] {
                s.sec_at[x.index()] = epoch;
                s.sec_new[x.index()] = new_secure;
                for &y in deps.dependents(x) {
                    if s.dirty_at[y as usize] != epoch {
                        s.dirty_at[y as usize] = epoch;
                        bucket_push(&mut s.levels, level + 1, y);
                    }
                }
            }
        }
        // Hand the drained bucket's allocation back for reuse.
        s.levels[level] = cur;
        s.levels[level].clear();
        level += 1;
    }

    // --- Flow phase. A node's flow is the fold of its *children's*
    // flows (reverse-scan order) plus its own weight, so flows can
    // change only where a child moved away/in (next-hop change) or a
    // child's flow changed — propagated strictly upward (parents are
    // one level shallower). Everything else keeps its base flow
    // bit-for-bit.
    #[inline]
    fn nh_of(s: &DeltaScratch, base_tree: &RouteTree, epoch: u32, x: u32) -> u32 {
        if s.nh_at[x as usize] == epoch {
            s.nh_new[x as usize]
        } else {
            base_tree.next_hop[x as usize]
        }
    }
    // `flow_at == epoch` doubles as the "queued" mark during seeding;
    // values are written when the level is processed (descending, so
    // every child is final first). flow[dest] accumulates in the scans
    // but is never read by either utility model, so propagation stops
    // there.
    #[inline]
    fn mark_flow(s: &mut DeltaScratch, epoch: u32, len: Option<u16>, y: u32, d: AsId) {
        if y == d.0 || s.flow_at[y as usize] == epoch {
            return;
        }
        let Some(len) = len else { return };
        s.flow_at[y as usize] = epoch;
        bucket_push(&mut s.flow_levels, len as usize, y);
    }
    for k in 0..s.nh_changed.len() {
        let x = s.nh_changed[k] as usize;
        let old_p = base_tree.next_hop[x];
        let new_p = s.nh_new[x];
        mark_flow(s, epoch, ctx.route_len(AsId(old_p)), old_p, d);
        mark_flow(s, epoch, ctx.route_len(AsId(new_p)), new_p, d);
    }
    let mut lvl = s.flow_levels.len();
    while lvl > 0 {
        lvl -= 1;
        let mut k = 0;
        // Marks land strictly at shallower levels (a parent is one
        // level up), so the current bucket never grows mid-drain.
        while k < s.flow_levels[lvl].len() {
            let yu = s.flow_levels[lvl][k];
            k += 1;
            let y = AsId(yu);
            touched += 1;
            if touched > max_touched {
                return None;
            }
            // Re-fold exactly as the full scan does: children in
            // reverse-scan order from +0.0, own weight last.
            let mut total = 0.0f64;
            for &xc in deps.dependents(y) {
                if nh_of(s, base_tree, epoch, xc) == yu {
                    total += if s.flow_at[xc as usize] == epoch {
                        s.flow_new[xc as usize]
                    } else {
                        base_flow[xc as usize]
                    };
                }
            }
            total += weights.get(y);
            s.flow_new[y.index()] = total;
            if total.to_bits() != base_flow[y.index()].to_bits() {
                let p = nh_of(s, base_tree, epoch, yu);
                mark_flow(s, epoch, ctx.route_len(AsId(p)), p, d);
            }
        }
    }

    // --- Read the candidate's utilities off the repaired values, in
    // the full scan's accumulation order.
    let flow_of = |x: u32| {
        if s.flow_at[x as usize] == epoch {
            s.flow_new[x as usize]
        } else {
            base_flow[x as usize]
        }
    };
    let mut u_in = 0.0f64;
    for &x in deps.dependents(target) {
        if nh_of(s, base_tree, epoch, x) == target.0
            && ctx.route_class(AsId(x)) == RouteClass::Provider
        {
            u_in += flow_of(x);
        }
    }
    let u_out = if ctx.route_class(target) == RouteClass::Customer {
        flow_of(target.0) - weights.get(target)
    } else {
        0.0
    };
    Some(DeltaOutcome {
        u_out,
        u_in,
        touched,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::DestContext;
    use crate::flows::{accumulate_flows, flows_and_target_utility};
    use crate::tiebreak::{HashTieBreak, LowestAsnTieBreak, TieBreaker};
    use crate::tree::compute_tree;
    use sbgp_asgraph::gen::{generate, GenParams};
    use sbgp_asgraph::{AsClass, AsGraph, AsGraphBuilder};

    /// Oracle: full recompute of the flipped tree + fused flow pass.
    fn full_project(
        g: &AsGraph,
        ctx: &DestContext,
        flipped: &SecureSet,
        policy: TreePolicy,
        weights: &Weights,
        target: AsId,
    ) -> (f64, f64) {
        let mut tree = RouteTree::new(g.len());
        compute_tree(g, ctx, flipped, policy, &mut tree);
        let mut flow = Vec::new();
        flows_and_target_utility(ctx, &tree, weights, target, &mut flow)
    }

    /// Run the delta against the oracle for one (dest, cand) pair and
    /// assert exact equality.
    #[allow(clippy::too_many_arguments)]
    fn check_pair(
        g: &AsGraph,
        tbk: &dyn TieBreaker,
        base_state: &SecureSet,
        policy: TreePolicy,
        weights: &Weights,
        d: AsId,
        cand: AsId,
        turn_on: bool,
    ) {
        let mut ctx = DestContext::new(g.len());
        ctx.compute(g, d, tbk);
        let mut base_tree = RouteTree::new(g.len());
        compute_tree(g, &ctx, base_state, policy, &mut base_tree);
        let mut base_flow = Vec::new();
        accumulate_flows(&ctx, &base_tree, weights, &mut base_flow);
        let mut deps = TbDependents::new(g.len());
        deps.build(&ctx);
        let mut flips = vec![cand];
        if turn_on {
            for st in g.stub_customers_of(cand) {
                if !base_state.get(st) {
                    flips.push(st);
                }
            }
        }
        let mut flipped = base_state.clone();
        for &f in &flips {
            flipped.set(f, turn_on);
        }
        let mut scratch = DeltaScratch::new(g.len());
        let got = delta_project(
            g,
            &ctx,
            &deps,
            &base_tree,
            &base_flow,
            &flipped,
            &flips,
            policy,
            weights,
            cand,
            usize::MAX,
            &mut scratch,
        )
        .expect("no cutoff");
        let (o, i) = full_project(g, &ctx, &flipped, policy, weights, cand);
        assert_eq!(got.u_out.to_bits(), o.to_bits(), "u_out d={d} cand={cand}");
        assert_eq!(got.u_in.to_bits(), i.to_bits(), "u_in d={d} cand={cand}");
    }

    #[test]
    fn dependents_cover_children_in_reverse_scan_order() {
        let g = generate(&GenParams::new(120, 5)).graph;
        let tbk = HashTieBreak;
        let mut ctx = DestContext::new(g.len());
        let mut deps = TbDependents::new(g.len());
        for d in g.nodes().step_by(13) {
            ctx.compute(&g, d, &tbk);
            deps.build(&ctx);
            // Reverse-scan position of every node.
            let mut pos = vec![usize::MAX; g.len()];
            for (k, &x) in ctx.order().iter().rev().enumerate() {
                pos[x as usize] = k;
            }
            for &m in ctx.order() {
                let list = deps.dependents(AsId(m));
                // Strictly increasing reverse-scan positions.
                for w in list.windows(2) {
                    assert!(pos[w[0] as usize] < pos[w[1] as usize]);
                }
                // Every dependent really holds m in its tiebreak set.
                for &x in list {
                    assert!(ctx.tiebreak_set(AsId(x)).contains(&m));
                }
            }
            // Children ⊆ dependents under any state's tree.
            let state = SecureSet::new(g.len());
            let mut tree = RouteTree::new(g.len());
            compute_tree(&g, &ctx, &state, TreePolicy::default(), &mut tree);
            for &x in ctx.order() {
                if AsId(x) == d {
                    continue;
                }
                let nh = tree.next_hop[x as usize];
                assert!(deps.dependents(AsId(nh)).contains(&x));
            }
        }
    }

    #[test]
    fn delta_matches_full_recompute_on_generated_graphs() {
        for seed in [3u64, 21, 77] {
            let g = generate(&GenParams::new(150, seed)).graph;
            let weights = Weights::with_cp_fraction(&g, 0.1);
            let tbk = HashTieBreak;
            let adopters = sbgp_asgraph::stats::top_k_by_degree(&g, AsClass::Isp, 3);
            let mut state = SecureSet::new(g.len());
            for &a in &adopters {
                state.set(a, true);
                for st in g.stub_customers_of(a) {
                    state.set(st, true);
                }
            }
            for policy in [true, false] {
                let policy = TreePolicy {
                    stubs_prefer_secure: policy,
                };
                for d in g.nodes().step_by(11) {
                    for cand in g.isps().step_by(5) {
                        let turn_on = !state.get(cand);
                        check_pair(&g, &tbk, &state, policy, &weights, d, cand, turn_on);
                    }
                }
            }
        }
    }

    #[test]
    fn delta_handles_destination_flip_and_lowest_asn_tiebreak() {
        let g = generate(&GenParams::new(100, 9)).graph;
        let weights = Weights::uniform(&g);
        let tbk = LowestAsnTieBreak;
        let adopters = sbgp_asgraph::stats::top_k_by_degree(&g, AsClass::Isp, 2);
        let mut state = SecureSet::new(g.len());
        for &a in &adopters {
            state.set(a, true);
        }
        let policy = TreePolicy::default();
        // Candidate == destination: the flip changes the root's
        // security, the deepest repair cascade there is.
        for cand in g.isps().step_by(7) {
            let turn_on = !state.get(cand);
            check_pair(&g, &tbk, &state, policy, &weights, cand, cand, turn_on);
        }
    }

    #[test]
    fn cutoff_returns_none_and_counts_touched() {
        let mut b = AsGraphBuilder::new();
        let t = b.add_node(1);
        let ia = b.add_node(10);
        let ib = b.add_node(20);
        let d = b.add_node(30);
        b.add_provider_customer(t, ia).unwrap();
        b.add_provider_customer(t, ib).unwrap();
        b.add_provider_customer(ia, d).unwrap();
        b.add_provider_customer(ib, d).unwrap();
        let g = b.build().unwrap();
        let weights = Weights::uniform(&g);
        let mut state = SecureSet::new(g.len());
        for x in [t, d] {
            state.set(x, true);
        }
        let mut ctx = DestContext::new(g.len());
        ctx.compute(&g, d, &LowestAsnTieBreak);
        let mut base_tree = RouteTree::new(g.len());
        compute_tree(&g, &ctx, &state, TreePolicy::default(), &mut base_tree);
        let mut base_flow = Vec::new();
        accumulate_flows(&ctx, &base_tree, &weights, &mut base_flow);
        let mut deps = TbDependents::new(g.len());
        deps.build(&ctx);
        let mut flipped = state.clone();
        flipped.set(ib, true);
        let mut scratch = DeltaScratch::new(g.len());
        let run = |scratch: &mut DeltaScratch, max| {
            delta_project(
                &g,
                &ctx,
                &deps,
                &base_tree,
                &base_flow,
                &flipped,
                &[ib],
                TreePolicy::default(),
                &weights,
                ib,
                max,
                scratch,
            )
        };
        let full = run(&mut scratch, usize::MAX).unwrap();
        assert!(full.touched >= 2, "ib's repair must cascade to t");
        assert!(run(&mut scratch, 1).is_none(), "cutoff triggers fallback");
        // The epoch machinery recovers from an aborted projection.
        let again = run(&mut scratch, usize::MAX).unwrap();
        assert_eq!(full, again);
    }

    #[test]
    fn untouched_region_means_zero_repairs() {
        // Flipping a node with no secure tiebreak competition anywhere
        // near it repairs only its own decision (and no flows when its
        // next hop cannot change).
        let g = generate(&GenParams::new(100, 13)).graph;
        let weights = Weights::uniform(&g);
        let state = SecureSet::new(g.len()); // nobody secure
        let tbk = HashTieBreak;
        let d = g.nodes().next().unwrap();
        let mut ctx = DestContext::new(g.len());
        ctx.compute(&g, d, &tbk);
        let mut base_tree = RouteTree::new(g.len());
        compute_tree(&g, &ctx, &state, TreePolicy::default(), &mut base_tree);
        let mut base_flow = Vec::new();
        accumulate_flows(&ctx, &base_tree, &weights, &mut base_flow);
        let mut deps = TbDependents::new(g.len());
        deps.build(&ctx);
        let cand = g
            .isps()
            .find(|&c| c != d && ctx.route_len(c).is_some())
            .unwrap();
        let mut flips = vec![cand];
        for st in g.stub_customers_of(cand) {
            flips.push(st);
        }
        let mut flipped = state.clone();
        for &f in &flips {
            flipped.set(f, true);
        }
        let mut scratch = DeltaScratch::new(g.len());
        let out = delta_project(
            &g,
            &ctx,
            &deps,
            &base_tree,
            &base_flow,
            &flipped,
            &flips,
            TreePolicy::default(),
            &weights,
            cand,
            usize::MAX,
            &mut scratch,
        )
        .unwrap();
        // In an all-insecure world no path is secure, so securing cand
        // (whose members are all insecure) moves nothing: the repairs
        // are bounded by the flip count, far below the full recompute.
        assert!(out.touched <= flips.len());
        let (o, i) = full_project(&g, &ctx, &flipped, TreePolicy::default(), &weights, cand);
        assert_eq!(out.u_out.to_bits(), o.to_bits());
        assert_eq!(out.u_in.to_bits(), i.to_bits());
    }
}
