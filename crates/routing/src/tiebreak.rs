//! The TB step of the Appendix A ranking.

use sbgp_asgraph::{AsGraph, AsId};

/// Deterministic intradomain tiebreak among equally-good
/// (same-class, same-length, same-security) next hops.
///
/// A smaller key wins. The simulator sorts each tiebreak set by key
/// once per destination, so implementations must be pure functions of
/// `(node, next_hop)`.
pub trait TieBreaker: Sync {
    /// Tiebreak key for `node` choosing `next_hop`; smaller wins.
    fn key(&self, g: &AsGraph, node: AsId, next_hop: AsId) -> u64;
}

/// The paper's simulation tiebreak (Appendix A, TB): a deterministic
/// hash `H(a, b)` of the (node, next-hop) AS numbers, standing in for
/// unmodeled intradomain criteria. FNV-1a over the two ASNs.
#[derive(Clone, Copy, Debug, Default)]
pub struct HashTieBreak;

impl TieBreaker for HashTieBreak {
    fn key(&self, g: &AsGraph, node: AsId, next_hop: AsId) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for v in [g.asn(node), g.asn(next_hop)] {
            for byte in v.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        }
        h
    }
}

/// The appendix constructions' tiebreak: prefer the next hop with the
/// lowest AS number (used by the AND/CHICKEN/SELECTOR gadgets and the
/// oscillator, Appendix K.3).
#[derive(Clone, Copy, Debug, Default)]
pub struct LowestAsnTieBreak;

impl TieBreaker for LowestAsnTieBreak {
    fn key(&self, g: &AsGraph, _node: AsId, next_hop: AsId) -> u64 {
        g.asn(next_hop) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbgp_asgraph::AsGraphBuilder;

    fn three_nodes() -> AsGraph {
        let mut b = AsGraphBuilder::new();
        let x = b.add_node(500);
        let y = b.add_node(100);
        let z = b.add_node(300);
        b.add_peer_peer(x, y).unwrap();
        b.add_peer_peer(x, z).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn lowest_asn_orders_by_asn() {
        let g = three_nodes();
        let x = g.node_by_asn(500).unwrap();
        let y = g.node_by_asn(100).unwrap();
        let z = g.node_by_asn(300).unwrap();
        let tb = LowestAsnTieBreak;
        assert!(tb.key(&g, x, y) < tb.key(&g, x, z));
    }

    #[test]
    fn hash_is_deterministic_and_pairwise() {
        let g = three_nodes();
        let x = g.node_by_asn(500).unwrap();
        let y = g.node_by_asn(100).unwrap();
        let z = g.node_by_asn(300).unwrap();
        let tb = HashTieBreak;
        assert_eq!(tb.key(&g, x, y), tb.key(&g, x, y));
        // Keys depend on both endpoints.
        assert_ne!(tb.key(&g, x, y), tb.key(&g, x, z));
        assert_ne!(tb.key(&g, x, y), tb.key(&g, y, x));
    }
}
