//! Tiebreak-set census (Figure 10 and the Section 6.7 computation).
//!
//! The tiebreak set of a (source, destination) pair is where all the
//! competition in the model lives: a set of size 1 leaves security no
//! routing decision to influence. The paper reports that tiebreak sets
//! are strikingly small (mean ≈ 1.3 for ISPs, 1.16 for stubs, ~20%
//! larger than a single path) and that, combined with ISPs being only
//! ~15% of ASes, under 4% of routing decisions are security-sensitive.

use crate::context::DestContext;
use crate::tiebreak::TieBreaker;
use sbgp_asgraph::{AsClass, AsGraph, AsId};

/// Aggregate tiebreak-set statistics across source–destination pairs.
#[derive(Clone, Debug, Default)]
pub struct TiebreakCensus {
    /// `histogram[k]` = number of (src, dst) pairs whose tiebreak set
    /// has size `k` (index 0 unused).
    pub histogram: Vec<u64>,
    /// Pair counts and size sums split by source class, indexed by
    /// `[stub, isp, cp]`.
    pub pairs_by_class: [u64; 3],
    /// Sum of tiebreak-set sizes by source class.
    pub size_sum_by_class: [f64; 3],
    /// Pairs with more than one path, by source class.
    pub multi_by_class: [u64; 3],
}

fn class_idx(c: AsClass) -> usize {
    match c {
        AsClass::Stub => 0,
        AsClass::Isp => 1,
        AsClass::ContentProvider => 2,
    }
}

impl TiebreakCensus {
    /// Run the census over all sources for every destination in
    /// `dests`. Pass every node to reproduce the paper's all-pairs
    /// census, or a sample for large graphs (document the sample!).
    pub fn run<T: TieBreaker + ?Sized>(
        g: &AsGraph,
        dests: impl IntoIterator<Item = AsId>,
        tiebreaker: &T,
    ) -> Self {
        let mut census = TiebreakCensus::default();
        let mut ctx = DestContext::new(g.len());
        for d in dests {
            ctx.compute(g, d, tiebreaker);
            census.add_destination(g, &ctx);
        }
        census
    }

    /// Add one destination's tiebreak sets to the census.
    pub fn add_destination(&mut self, g: &AsGraph, ctx: &DestContext) {
        for &xi in ctx.order() {
            let x = AsId(xi);
            if x == ctx.dest() {
                continue;
            }
            let size = ctx.tiebreak_set(x).len();
            if self.histogram.len() <= size {
                self.histogram.resize(size + 1, 0);
            }
            self.histogram[size] += 1;
            let ci = class_idx(g.class(x));
            self.pairs_by_class[ci] += 1;
            self.size_sum_by_class[ci] += size as f64;
            if size > 1 {
                self.multi_by_class[ci] += 1;
            }
        }
    }

    /// Total (src, dst) pairs observed.
    pub fn total_pairs(&self) -> u64 {
        self.pairs_by_class.iter().sum()
    }

    /// Mean tiebreak-set size across all pairs.
    pub fn mean(&self) -> f64 {
        let total = self.total_pairs();
        if total == 0 {
            return 0.0;
        }
        self.size_sum_by_class.iter().sum::<f64>() / total as f64
    }

    /// Mean tiebreak-set size for a source class.
    pub fn mean_for(&self, class: AsClass) -> f64 {
        let i = class_idx(class);
        if self.pairs_by_class[i] == 0 {
            return 0.0;
        }
        self.size_sum_by_class[i] / self.pairs_by_class[i] as f64
    }

    /// Fraction of pairs with more than one equally-good path.
    pub fn multi_fraction(&self) -> f64 {
        let total = self.total_pairs();
        if total == 0 {
            return 0.0;
        }
        self.multi_by_class.iter().sum::<u64>() as f64 / total as f64
    }

    /// Fraction of pairs with more than one path for a source class.
    pub fn multi_fraction_for(&self, class: AsClass) -> f64 {
        let i = class_idx(class);
        if self.pairs_by_class[i] == 0 {
            return 0.0;
        }
        self.multi_by_class[i] as f64 / self.pairs_by_class[i] as f64
    }

    /// The Section 6.7 estimate: the fraction of all routing decisions
    /// that security can influence — decisions made by ISPs (stubs
    /// transit nothing, CPs originate only) with a multi-path tiebreak
    /// set. The paper computes 0.15 × 0.23 ≈ 3.5%.
    pub fn security_sensitive_fraction(&self) -> f64 {
        let total = self.total_pairs();
        if total == 0 {
            return 0.0;
        }
        self.multi_by_class[class_idx(AsClass::Isp)] as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tiebreak::HashTieBreak;
    use sbgp_asgraph::gen::{generate, GenParams};
    use sbgp_asgraph::AsGraphBuilder;

    #[test]
    fn diamond_has_one_multipath_pair() {
        let mut b = AsGraphBuilder::new();
        let s = b.add_node(1);
        let ia = b.add_node(2);
        let ib = b.add_node(3);
        let d = b.add_node(4);
        b.add_provider_customer(s, ia).unwrap();
        b.add_provider_customer(s, ib).unwrap();
        b.add_provider_customer(ia, d).unwrap();
        b.add_provider_customer(ib, d).unwrap();
        let g = b.build().unwrap();
        let census = TiebreakCensus::run(&g, [d], &HashTieBreak);
        assert_eq!(census.total_pairs(), 3);
        assert_eq!(census.histogram[2], 1, "s has 2 choices");
        assert_eq!(census.histogram[1], 2, "the ISPs have 1 each");
        assert!((census.mean() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn generated_graph_matches_paper_regime() {
        let g = generate(&GenParams::small(42)).graph;
        let dests: Vec<AsId> = g.nodes().step_by(7).collect(); // sample
        let census = TiebreakCensus::run(&g, dests, &HashTieBreak);
        let mean = census.mean();
        assert!(
            (1.0..=1.8).contains(&mean),
            "mean tiebreak size {mean} outside the paper's regime"
        );
        // ISPs see (weakly) more competition than stubs.
        assert!(census.mean_for(AsClass::Isp) >= census.mean_for(AsClass::Stub) - 0.05);
        // Most pairs have a single path.
        assert!(census.multi_fraction() < 0.5);
        // Security-sensitive decisions are a small minority.
        assert!(census.security_sensitive_fraction() < 0.15);
    }

    #[test]
    fn empty_census_is_zeroed() {
        let census = TiebreakCensus::default();
        assert_eq!(census.mean(), 0.0);
        assert_eq!(census.multi_fraction(), 0.0);
        assert_eq!(census.security_sensitive_fraction(), 0.0);
    }
}
