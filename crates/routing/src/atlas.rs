//! The frozen-context atlas: every destination's [`DestContext`]
//! precomputed once per `(graph, tiebreaker)` and shared read-only.
//!
//! Observation C.1 makes per-destination route classes, lengths, and
//! tiebreak sets *state-independent*, so a simulation that recomputes
//! them every round (or every sweep repetition over the same graph)
//! repeats identical work `rounds × |V|` times. A [`RoutingAtlas`]
//! runs the three-stage BFS for all destinations exactly once — in
//! parallel — and flattens the results into CSR-style shared arenas
//! (`len`/`class`/`tb`/`order`), which threads, rounds, and sweep
//! repetitions borrow through [`AtlasView`] (an impl of
//! [`RouteContext`]) behind an `Arc` with zero synchronization on the
//! read path.
//!
//! A configurable **memory budget** keeps huge graphs tractable: the
//! atlas stores destinations in ascending id order until the budget is
//! exhausted, and the rest are *evicted at build time* — a lookup for
//! them misses and the caller recomputes the context on the fly
//! (identical results either way; the engine's eviction test pins
//! that down bit for bit). Hit/miss/eviction/byte counters are
//! exposed via [`RoutingAtlas::stats`].

use crate::context::{DestContext, RouteClass, RouteContext, UNREACH};
use crate::tiebreak::TieBreaker;
use sbgp_asgraph::{AsGraph, AsId};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::time::Instant;

/// `slot_of` sentinel for destinations not stored in the arenas.
const NO_SLOT: u32 = u32::MAX;

/// One destination's context, detached from the scratch buffers so it
/// can be sent from a build worker to the arena appender.
struct BuiltCtx {
    dest: u32,
    len: Vec<u16>,
    class: Vec<RouteClass>,
    tb_off: Vec<u32>,
    tb: Vec<u32>,
    order: Vec<u32>,
}

impl BuiltCtx {
    fn snapshot(d: AsId, ctx: &DestContext) -> Self {
        BuiltCtx {
            dest: d.0,
            len: ctx.len.clone(),
            class: ctx.class.clone(),
            tb_off: ctx.tb_off.clone(),
            tb: ctx.tb.clone(),
            order: ctx.order.clone(),
        }
    }

    /// Arena bytes this destination will occupy once flattened.
    fn bytes(&self) -> usize {
        self.len.len() * std::mem::size_of::<u16>()
            + self.class.len() * std::mem::size_of::<RouteClass>()
            + self.tb_off.len() * std::mem::size_of::<u32>()
            + self.tb.len() * std::mem::size_of::<u32>()
            + self.order.len() * std::mem::size_of::<u32>()
    }
}

/// A point-in-time snapshot of the atlas's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AtlasStats {
    /// Destinations whose contexts live in the arenas.
    pub stored: usize,
    /// Destinations dropped at build time because the memory budget
    /// ran out; lookups for them miss and callers recompute.
    pub evicted: usize,
    /// Total arena bytes held by stored contexts.
    pub bytes: usize,
    /// Lookups served from the arenas.
    pub hits: u64,
    /// Lookups for evicted destinations (recomputed by the caller).
    pub misses: u64,
    /// Wall time of the parallel build, in nanoseconds.
    pub build_ns: u64,
}

/// Immutable per-destination contexts for a whole graph, flattened
/// into shared arenas. Build once with [`RoutingAtlas::build`], wrap
/// in an `Arc`, and share across threads, rounds, and repetitions.
pub struct RoutingAtlas {
    n: usize,
    /// Destination id → arena slot (`NO_SLOT` if evicted).
    slot_of: Vec<u32>,
    len_arena: Vec<u16>,
    class_arena: Vec<RouteClass>,
    tb_off_arena: Vec<u32>,
    tb_arena: Vec<u32>,
    /// Slot → start of its tiebreak segment (length `slots + 1`).
    tb_bounds: Vec<usize>,
    order_arena: Vec<u32>,
    order_bounds: Vec<usize>,
    bytes: usize,
    evicted: usize,
    build_ns: u64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl std::fmt::Debug for RoutingAtlas {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RoutingAtlas")
            .field("nodes", &self.n)
            .field("stats", &self.stats())
            .finish()
    }
}

impl RoutingAtlas {
    /// Precompute the contexts of every destination of `g`, storing
    /// them in ascending id order until `budget_bytes` of arena space
    /// is used (destinations past the budget are evicted — lookups
    /// miss and the caller recomputes). `threads = 0` uses all
    /// available parallelism.
    pub fn build<T: TieBreaker + ?Sized>(
        g: &AsGraph,
        tiebreaker: &T,
        budget_bytes: usize,
        threads: usize,
    ) -> Self {
        let t0 = Instant::now();
        let n = g.len();
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            threads
        }
        .clamp(1, n.max(1));

        let mut atlas = RoutingAtlas {
            n,
            slot_of: vec![NO_SLOT; n],
            len_arena: Vec::new(),
            class_arena: Vec::new(),
            tb_off_arena: Vec::new(),
            tb_arena: Vec::new(),
            tb_bounds: vec![0],
            order_arena: Vec::new(),
            order_bounds: vec![0],
            bytes: 0,
            evicted: 0,
            build_ns: 0,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        };

        if threads <= 1 {
            let mut ctx = DestContext::new(n);
            for d in g.nodes() {
                ctx.compute(g, d, tiebreaker);
                let built = BuiltCtx::snapshot(d, &ctx);
                if !atlas.try_append(built, budget_bytes) {
                    break;
                }
            }
        } else {
            atlas.build_parallel(g, tiebreaker, budget_bytes, threads);
        }
        atlas.evicted = n - atlas.stored();
        atlas.build_ns = t0.elapsed().as_nanos() as u64;
        atlas
    }

    /// Parallel build: workers claim destination ids off an atomic
    /// counter and send snapshots over a bounded channel; this thread
    /// appends them to the arenas in ascending id order (a small
    /// reorder buffer bridges out-of-order arrival) until the budget
    /// runs out, at which point workers observe the stop flag and
    /// quit.
    fn build_parallel<T: TieBreaker + ?Sized>(
        &mut self,
        g: &AsGraph,
        tiebreaker: &T,
        budget_bytes: usize,
        threads: usize,
    ) {
        use std::sync::atomic::AtomicBool;
        let n = self.n;
        let next = std::sync::atomic::AtomicUsize::new(0);
        let stop = AtomicBool::new(false);
        let (tx, rx) = mpsc::sync_channel::<BuiltCtx>(2 * threads);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let tx = tx.clone();
                let next = &next;
                let stop = &stop;
                scope.spawn(move || {
                    let mut ctx = DestContext::new(n);
                    loop {
                        if stop.load(Ordering::Relaxed) {
                            return;
                        }
                        let d = next.fetch_add(1, Ordering::Relaxed);
                        if d >= n {
                            return;
                        }
                        let d = AsId(d as u32);
                        ctx.compute(g, d, tiebreaker);
                        if tx.send(BuiltCtx::snapshot(d, &ctx)).is_err() {
                            return;
                        }
                    }
                });
            }
            drop(tx);
            let mut pending = std::collections::BTreeMap::new();
            let mut want = 0u32;
            while let Ok(built) = rx.recv() {
                pending.insert(built.dest, built);
                while let Some(built) = pending.remove(&want) {
                    if !self.try_append(built, budget_bytes) {
                        stop.store(true, Ordering::Relaxed);
                        // Drain so blocked senders can observe the flag.
                        while rx.recv().is_ok() {}
                        return;
                    }
                    want += 1;
                }
            }
        });
    }

    /// Append one destination's context if it fits the budget; returns
    /// `false` (storing nothing) once the budget is exhausted.
    fn try_append(&mut self, built: BuiltCtx, budget_bytes: usize) -> bool {
        let cost = built.bytes();
        if self.bytes + cost > budget_bytes {
            return false;
        }
        let slot = self.tb_bounds.len() - 1;
        self.len_arena.extend_from_slice(&built.len);
        self.class_arena.extend_from_slice(&built.class);
        self.tb_off_arena.extend_from_slice(&built.tb_off);
        self.tb_arena.extend_from_slice(&built.tb);
        self.tb_bounds.push(self.tb_arena.len());
        self.order_arena.extend_from_slice(&built.order);
        self.order_bounds.push(self.order_arena.len());
        self.slot_of[built.dest as usize] = slot as u32;
        self.bytes += cost;
        true
    }

    /// Number of graph nodes the atlas was built for.
    pub fn nodes(&self) -> usize {
        self.n
    }

    /// Destinations whose contexts are stored.
    pub fn stored(&self) -> usize {
        self.tb_bounds.len() - 1
    }

    /// Borrow destination `d`'s context, counting a hit; `None` (a
    /// counted miss) if `d` was evicted by the build budget.
    #[inline]
    pub fn get(&self, d: AsId) -> Option<AtlasView<'_>> {
        let slot = self.slot_of[d.index()];
        if slot == NO_SLOT {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        self.hits.fetch_add(1, Ordering::Relaxed);
        let s = slot as usize;
        let n = self.n;
        Some(AtlasView {
            dest: d,
            len: &self.len_arena[s * n..(s + 1) * n],
            class: &self.class_arena[s * n..(s + 1) * n],
            tb_off: &self.tb_off_arena[s * (n + 1)..(s + 1) * (n + 1)],
            tb: &self.tb_arena[self.tb_bounds[s]..self.tb_bounds[s + 1]],
            order: &self.order_arena[self.order_bounds[s]..self.order_bounds[s + 1]],
        })
    }

    /// Current counters (hits/misses accumulate across all sharers).
    pub fn stats(&self) -> AtlasStats {
        AtlasStats {
            stored: self.stored(),
            evicted: self.evicted,
            bytes: self.bytes,
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            build_ns: self.build_ns,
        }
    }
}

/// A borrowed view of one destination's context inside the atlas
/// arenas; implements [`RouteContext`] so it is interchangeable with
/// a freshly computed [`DestContext`].
#[derive(Clone, Copy, Debug)]
pub struct AtlasView<'a> {
    dest: AsId,
    len: &'a [u16],
    class: &'a [RouteClass],
    tb_off: &'a [u32],
    tb: &'a [u32],
    order: &'a [u32],
}

impl RouteContext for AtlasView<'_> {
    #[inline]
    fn dest(&self) -> AsId {
        self.dest
    }
    #[inline]
    fn route_len(&self, n: AsId) -> Option<u16> {
        match self.len[n.index()] {
            UNREACH => None,
            l => Some(l),
        }
    }
    #[inline]
    fn route_class(&self, n: AsId) -> RouteClass {
        self.class[n.index()]
    }
    #[inline]
    fn tiebreak_set(&self, n: AsId) -> &[u32] {
        let i = n.index();
        &self.tb[self.tb_off[i] as usize..self.tb_off[i + 1] as usize]
    }
    #[inline]
    fn order(&self) -> &[u32] {
        self.order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tiebreak::HashTieBreak;
    use sbgp_asgraph::gen::{generate, GenParams};

    fn views_match(g: &AsGraph, atlas: &RoutingAtlas, d: AsId) {
        let mut ctx = DestContext::new(g.len());
        ctx.compute(g, d, &HashTieBreak);
        let view = atlas.get(d).expect("stored destination");
        assert_eq!(view.dest(), RouteContext::dest(&ctx));
        assert_eq!(view.order(), RouteContext::order(&ctx));
        for x in g.nodes() {
            assert_eq!(view.route_len(x), ctx.route_len(x), "len at {x}");
            assert_eq!(view.route_class(x), ctx.route_class(x), "class at {x}");
            assert_eq!(view.tiebreak_set(x), ctx.tiebreak_set(x), "tb at {x}");
        }
    }

    #[test]
    fn atlas_views_equal_fresh_contexts() {
        let g = generate(&GenParams::new(120, 9)).graph;
        for threads in [1, 4] {
            let atlas = RoutingAtlas::build(&g, &HashTieBreak, usize::MAX, threads);
            assert_eq!(atlas.stored(), g.len());
            assert_eq!(atlas.stats().evicted, 0);
            for d in g.nodes() {
                views_match(&g, &atlas, d);
            }
        }
    }

    #[test]
    fn budget_evicts_suffix_and_counts_misses() {
        let g = generate(&GenParams::new(100, 4)).graph;
        let full = RoutingAtlas::build(&g, &HashTieBreak, usize::MAX, 2);
        let per_dest = full.stats().bytes / g.len();
        // Room for roughly half the destinations.
        let budget = per_dest * (g.len() / 2);
        let small = RoutingAtlas::build(&g, &HashTieBreak, budget, 2);
        let stored = small.stored();
        assert!(stored > 0 && stored < g.len(), "stored {stored}");
        assert_eq!(small.stats().evicted, g.len() - stored);
        assert!(small.stats().bytes <= budget);
        // Stored prefix is exactly the low ids; the rest miss.
        for d in g.nodes() {
            let hit = small.get(d).is_some();
            assert_eq!(hit, d.index() < stored, "dest {d}");
            if hit {
                views_match(&g, &small, d);
            }
        }
        let s = small.stats();
        assert!(s.hits > 0 && s.misses > 0);
    }

    #[test]
    fn zero_budget_stores_nothing() {
        let g = generate(&GenParams::new(100, 1)).graph;
        let atlas = RoutingAtlas::build(&g, &HashTieBreak, 0, 2);
        assert_eq!(atlas.stored(), 0);
        assert_eq!(atlas.stats().evicted, g.len());
        assert!(atlas.get(AsId(0)).is_none());
    }
}
