//! The frozen-context atlas: every destination's [`DestContext`]
//! precomputed once per `(graph, tiebreaker)` and shared read-only.
//!
//! Observation C.1 makes per-destination route classes, lengths, and
//! tiebreak sets *state-independent*, so a simulation that recomputes
//! them every round (or every sweep repetition over the same graph)
//! repeats identical work `rounds × |V|` times. A [`RoutingAtlas`]
//! runs the three-stage BFS for all destinations exactly once — in
//! parallel — and flattens the results into **compressed** shared
//! arenas that threads, rounds, and sweep repetitions borrow through
//! [`AtlasView`] (an impl of [`RouteContext`]) behind an `Arc`.
//!
//! # Compressed layout
//!
//! The dense layout (u16 length, 1-byte class, u32 CSR tiebreak sets,
//! u32 order) costs ~15.8 bytes per (destination, node) pair — ~20 GB
//! for the paper's 36,964-AS graph. Three observations shrink that ~3×:
//!
//! * **Packed class+length** — route lengths on AS graphs are tiny
//!   (valley-free paths rarely exceed ~10 hops), so class (3 bits) and
//!   length (5 bits, lengths ≥ 31 spill to a sorted side list) share
//!   one byte per node in the `class_len` arena.
//! * **Singleton-inlined tiebreak sets** — most tiebreak sets hold
//!   exactly one next hop; a single `u16` per node stores that member
//!   inline ([`EMPTY_TB`] for the destination / unreachable nodes,
//!   [`SPILLED_TB`] for multi-entry sets stored as `[count, members…]`
//!   groups in a side arena).
//! * **u16 processing order** — node ids fit `u16` (the pipeline caps
//!   graphs at [`sbgp_asgraph::MAX_GRAPH_NODES`] = 65,534 nodes), so
//!   the stored per-destination BFS order halves. The order must be
//!   *stored*, not recomputed: within a BFS level it interleaves
//!   counting-sorted seeds with discovery-order expansion, which is not
//!   a pure function of the packed lengths, and replaying it exactly is
//!   what keeps flow summation bit-identical.
//!
//! Reads go through a caller-owned [`AtlasScratch`]: [`RoutingAtlas::get`]
//! rebuilds the u32 CSR offsets and order the kernels consume (one
//! linear pass, memcpy-speed) while classes and lengths are decoded
//! in place from the packed byte.
//!
//! A configurable **memory budget** keeps huge graphs tractable: the
//! atlas stores destinations in ascending id order until the budget is
//! exhausted, and the rest are *evicted at build time* — a lookup for
//! them misses and the caller recomputes the context on the fly
//! (identical results either way; the engine's eviction test pins
//! that down bit for bit). Hit/miss/eviction/byte counters are
//! exposed via [`RoutingAtlas::stats`].

use crate::context::{DestContext, RouteClass, RouteContext};
use crate::tiebreak::TieBreaker;
use sbgp_asgraph::{AsGraph, AsId};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::time::Instant;

/// `slot_of` sentinel for destinations not stored in the arenas.
const NO_SLOT: u32 = u32::MAX;

/// `tb_word` sentinel: this node's tiebreak set is empty (it is the
/// destination, or unreachable).
const EMPTY_TB: u16 = u16::MAX;

/// `tb_word` sentinel: this node's tiebreak set has ≥ 2 members and
/// lives in the spill arena. Valid node ids stay below this value
/// (`MAX_GRAPH_NODES` = `u16::MAX - 1` nodes → ids ≤ `u16::MAX - 2`).
const SPILLED_TB: u16 = u16::MAX - 1;

/// Low-5-bits sentinel in `class_len`: the true length is ≥ 31 and
/// stored in the sorted `len_ovf` side list.
const LEN_OVERFLOW: u8 = 0x1F;

/// Decode the class bits of a packed `class_len` byte.
#[inline]
fn class_of(b: u8) -> RouteClass {
    match b >> 5 {
        0 => RouteClass::SelfDest,
        1 => RouteClass::Customer,
        2 => RouteClass::Peer,
        3 => RouteClass::Provider,
        _ => RouteClass::Unreachable,
    }
}

/// One destination's context, compressed in the build worker so the
/// arena appender extends slices without re-encoding (the dense
/// five-buffer snapshot this replaces doubled peak build memory).
struct CompressedCtx {
    dest: u32,
    class_len: Vec<u8>,
    tb_word: Vec<u16>,
    tb_spill: Vec<u16>,
    len_ovf: Vec<(u16, u16)>,
    order: Vec<u16>,
    raw_bytes: usize,
}

impl CompressedCtx {
    fn from_context(d: AsId, ctx: &DestContext) -> Self {
        let n = ctx.len.len();
        let mut class_len = Vec::with_capacity(n);
        let mut tb_word = Vec::with_capacity(n);
        let mut tb_spill = Vec::new();
        let mut len_ovf = Vec::new();
        for i in 0..n {
            let class = ctx.class[i];
            let b = if class == RouteClass::Unreachable {
                (RouteClass::Unreachable as u8) << 5
            } else {
                let l = ctx.len[i];
                let l5 = if l >= LEN_OVERFLOW as u16 {
                    // Pushed in ascending node id, so the side list is
                    // sorted and binary-searchable by construction.
                    len_ovf.push((i as u16, l));
                    LEN_OVERFLOW
                } else {
                    l as u8
                };
                ((class as u8) << 5) | l5
            };
            class_len.push(b);
            let set = &ctx.tb[ctx.tb_off[i] as usize..ctx.tb_off[i + 1] as usize];
            match set {
                [] => tb_word.push(EMPTY_TB),
                [m] => tb_word.push(*m as u16),
                _ => {
                    tb_word.push(SPILLED_TB);
                    tb_spill.push(set.len() as u16);
                    tb_spill.extend(set.iter().map(|&m| m as u16));
                }
            }
        }
        let order: Vec<u16> = ctx.order.iter().map(|&x| x as u16).collect();
        // What the pre-compression dense layout would have cost.
        let raw_bytes = n * std::mem::size_of::<u16>()
            + n * std::mem::size_of::<RouteClass>()
            + (n + 1) * std::mem::size_of::<u32>()
            + ctx.tb.len() * std::mem::size_of::<u32>()
            + ctx.order.len() * std::mem::size_of::<u32>();
        CompressedCtx {
            dest: d.0,
            class_len,
            tb_word,
            tb_spill,
            len_ovf,
            order,
            raw_bytes,
        }
    }

    /// Arena bytes this destination will occupy once flattened.
    fn bytes(&self) -> usize {
        self.class_len.len()
            + self.tb_word.len() * 2
            + self.tb_spill.len() * 2
            + self.len_ovf.len() * 4
            + self.order.len() * 2
    }
}

/// A point-in-time snapshot of the atlas's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AtlasStats {
    /// Destinations whose contexts live in the arenas.
    pub stored: usize,
    /// Destinations dropped at build time because the memory budget
    /// ran out; lookups for them miss and callers recompute.
    pub evicted: usize,
    /// Total arena bytes held by stored contexts (compressed).
    pub bytes: usize,
    /// Bytes the stored contexts would occupy in the dense
    /// pre-compression layout; `raw_bytes / bytes` is the compression
    /// ratio.
    pub raw_bytes: usize,
    /// Lookups served from the arenas.
    pub hits: u64,
    /// Lookups for evicted destinations (recomputed by the caller).
    pub misses: u64,
    /// Wall time of the parallel build, in nanoseconds.
    pub build_ns: u64,
}

impl AtlasStats {
    /// Dense-layout bytes divided by compressed bytes (1.0 when the
    /// atlas is empty).
    pub fn compression_ratio(&self) -> f64 {
        if self.bytes == 0 {
            1.0
        } else {
            self.raw_bytes as f64 / self.bytes as f64
        }
    }
}

/// Caller-owned decode buffers for [`RoutingAtlas::get`]: the u32 CSR
/// tiebreak offsets and processing order the kernels consume, rebuilt
/// per lookup from the compressed arenas. One per worker thread,
/// reused across destinations.
#[derive(Debug, Default)]
pub struct AtlasScratch {
    tb_off: Vec<u32>,
    tb: Vec<u32>,
    order: Vec<u32>,
}

impl AtlasScratch {
    /// Empty scratch; buffers grow to graph size on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Scratch pre-sized for an `n`-node graph.
    pub fn with_capacity(n: usize) -> Self {
        AtlasScratch {
            tb_off: Vec::with_capacity(n + 1),
            tb: Vec::with_capacity(n),
            order: Vec::with_capacity(n),
        }
    }
}

/// Immutable per-destination contexts for a whole graph, flattened
/// into compressed shared arenas. Build once with
/// [`RoutingAtlas::build`], wrap in an `Arc`, and share across
/// threads, rounds, and repetitions.
pub struct RoutingAtlas {
    n: usize,
    /// Destination id → arena slot (`NO_SLOT` if evicted).
    slot_of: Vec<u32>,
    /// Per (slot, node): class (high 3 bits) | length (low 5 bits).
    class_len: Vec<u8>,
    /// Per (slot, node): inline singleton tiebreak member or sentinel.
    tb_word: Vec<u16>,
    /// Multi-entry tiebreak sets as `[count, members…]` groups.
    tb_spill: Vec<u16>,
    /// Slot → start of its spill segment (length `slots + 1`).
    tb_spill_bounds: Vec<usize>,
    /// Per slot, sorted `(node id, true length)` for lengths ≥ 31.
    len_ovf: Vec<(u16, u16)>,
    len_ovf_bounds: Vec<usize>,
    order: Vec<u16>,
    order_bounds: Vec<usize>,
    bytes: usize,
    raw_bytes: usize,
    evicted: usize,
    build_ns: u64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl std::fmt::Debug for RoutingAtlas {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RoutingAtlas")
            .field("nodes", &self.n)
            .field("stats", &self.stats())
            .finish()
    }
}

impl RoutingAtlas {
    /// Precompute the contexts of every destination of `g`, storing
    /// them in ascending id order until `budget_bytes` of arena space
    /// is used (destinations past the budget are evicted — lookups
    /// miss and the caller recomputes). `threads = 0` uses all
    /// available parallelism.
    pub fn build<T: TieBreaker + ?Sized>(
        g: &AsGraph,
        tiebreaker: &T,
        budget_bytes: usize,
        threads: usize,
    ) -> Self {
        let t0 = Instant::now();
        let n = g.len();
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            threads
        }
        .clamp(1, n.max(1));

        let mut atlas = RoutingAtlas {
            n,
            slot_of: vec![NO_SLOT; n],
            class_len: Vec::new(),
            tb_word: Vec::new(),
            tb_spill: Vec::new(),
            tb_spill_bounds: vec![0],
            len_ovf: Vec::new(),
            len_ovf_bounds: vec![0],
            order: Vec::new(),
            order_bounds: vec![0],
            bytes: 0,
            raw_bytes: 0,
            evicted: 0,
            build_ns: 0,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        };

        if threads <= 1 {
            let mut ctx = DestContext::new(n);
            for d in g.nodes() {
                ctx.compute(g, d, tiebreaker);
                let built = CompressedCtx::from_context(d, &ctx);
                if !atlas.try_append(built, budget_bytes) {
                    break;
                }
            }
        } else {
            atlas.build_parallel(g, tiebreaker, budget_bytes, threads);
        }
        atlas.evicted = n - atlas.stored();
        atlas.build_ns = t0.elapsed().as_nanos() as u64;
        atlas
    }

    /// Parallel build: workers claim destination ids off an atomic
    /// counter, compress in place, and send the compressed contexts
    /// over a bounded channel; this thread appends them to the arenas
    /// in ascending id order (a small reorder buffer bridges
    /// out-of-order arrival) until the budget runs out, at which point
    /// workers observe the stop flag and quit.
    fn build_parallel<T: TieBreaker + ?Sized>(
        &mut self,
        g: &AsGraph,
        tiebreaker: &T,
        budget_bytes: usize,
        threads: usize,
    ) {
        use std::sync::atomic::AtomicBool;
        let n = self.n;
        let next = std::sync::atomic::AtomicUsize::new(0);
        let stop = AtomicBool::new(false);
        let (tx, rx) = mpsc::sync_channel::<CompressedCtx>(2 * threads);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let tx = tx.clone();
                let next = &next;
                let stop = &stop;
                scope.spawn(move || {
                    let mut ctx = DestContext::new(n);
                    loop {
                        if stop.load(Ordering::Relaxed) {
                            return;
                        }
                        let d = next.fetch_add(1, Ordering::Relaxed);
                        if d >= n {
                            return;
                        }
                        let d = AsId(d as u32);
                        ctx.compute(g, d, tiebreaker);
                        if tx.send(CompressedCtx::from_context(d, &ctx)).is_err() {
                            return;
                        }
                    }
                });
            }
            drop(tx);
            let mut pending = std::collections::BTreeMap::new();
            let mut want = 0u32;
            while let Ok(built) = rx.recv() {
                pending.insert(built.dest, built);
                while let Some(built) = pending.remove(&want) {
                    if !self.try_append(built, budget_bytes) {
                        stop.store(true, Ordering::Relaxed);
                        // Drain so blocked senders can observe the flag.
                        while rx.recv().is_ok() {}
                        return;
                    }
                    want += 1;
                }
            }
        });
    }

    /// Append one destination's compressed context if it fits the
    /// budget; returns `false` (storing nothing) once the budget is
    /// exhausted. `bytes` stays equal to the arena truth by
    /// construction: every slice appended here is counted by
    /// [`CompressedCtx::bytes`].
    fn try_append(&mut self, built: CompressedCtx, budget_bytes: usize) -> bool {
        let cost = built.bytes();
        if self.bytes + cost > budget_bytes {
            return false;
        }
        let slot = self.order_bounds.len() - 1;
        self.class_len.extend_from_slice(&built.class_len);
        self.tb_word.extend_from_slice(&built.tb_word);
        self.tb_spill.extend_from_slice(&built.tb_spill);
        self.tb_spill_bounds.push(self.tb_spill.len());
        self.len_ovf.extend_from_slice(&built.len_ovf);
        self.len_ovf_bounds.push(self.len_ovf.len());
        self.order.extend_from_slice(&built.order);
        self.order_bounds.push(self.order.len());
        self.slot_of[built.dest as usize] = slot as u32;
        self.bytes += cost;
        self.raw_bytes += built.raw_bytes;
        true
    }

    /// Number of graph nodes the atlas was built for.
    pub fn nodes(&self) -> usize {
        self.n
    }

    /// Destinations whose contexts are stored.
    pub fn stored(&self) -> usize {
        self.order_bounds.len() - 1
    }

    /// Borrow destination `d`'s context, counting a hit; `None` (a
    /// counted miss) if `d` was evicted by the build budget.
    ///
    /// Decodes the compressed tiebreak layout and u16 order into
    /// `scratch` (one linear pass over the destination's rows); the
    /// returned view borrows both the arenas and the scratch.
    pub fn get<'a>(&'a self, d: AsId, scratch: &'a mut AtlasScratch) -> Option<AtlasView<'a>> {
        let slot = self.slot_of[d.index()];
        if slot == NO_SLOT {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        self.hits.fetch_add(1, Ordering::Relaxed);
        let s = slot as usize;
        let n = self.n;
        let class_len = &self.class_len[s * n..(s + 1) * n];
        let tb_word = &self.tb_word[s * n..(s + 1) * n];
        let spill = &self.tb_spill[self.tb_spill_bounds[s]..self.tb_spill_bounds[s + 1]];
        let len_ovf = &self.len_ovf[self.len_ovf_bounds[s]..self.len_ovf_bounds[s + 1]];
        let order16 = &self.order[self.order_bounds[s]..self.order_bounds[s + 1]];

        scratch.tb_off.clear();
        scratch.tb.clear();
        scratch.tb_off.reserve(n + 1);
        scratch.tb_off.push(0);
        let mut cursor = 0usize;
        for &w in tb_word {
            match w {
                EMPTY_TB => {}
                SPILLED_TB => {
                    let count = spill[cursor] as usize;
                    scratch.tb.extend(
                        spill[cursor + 1..cursor + 1 + count]
                            .iter()
                            .map(|&m| m as u32),
                    );
                    cursor += 1 + count;
                }
                m => scratch.tb.push(m as u32),
            }
            scratch.tb_off.push(scratch.tb.len() as u32);
        }
        scratch.order.clear();
        scratch.order.extend(order16.iter().map(|&x| x as u32));

        Some(AtlasView {
            dest: d,
            class_len,
            len_ovf,
            tb_off: &scratch.tb_off,
            tb: &scratch.tb,
            order: &scratch.order,
        })
    }

    /// Current counters (hits/misses accumulate across all sharers).
    pub fn stats(&self) -> AtlasStats {
        AtlasStats {
            stored: self.stored(),
            evicted: self.evicted,
            bytes: self.bytes,
            raw_bytes: self.raw_bytes,
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            build_ns: self.build_ns,
        }
    }
}

/// A borrowed view of one destination's context: packed class/length
/// bytes straight from the atlas arenas, tiebreak CSR and order from
/// the caller's decoded [`AtlasScratch`]. Implements [`RouteContext`]
/// so it is interchangeable with a freshly computed [`DestContext`].
#[derive(Clone, Copy, Debug)]
pub struct AtlasView<'a> {
    dest: AsId,
    class_len: &'a [u8],
    len_ovf: &'a [(u16, u16)],
    tb_off: &'a [u32],
    tb: &'a [u32],
    order: &'a [u32],
}

impl RouteContext for AtlasView<'_> {
    #[inline]
    fn dest(&self) -> AsId {
        self.dest
    }
    #[inline]
    fn route_len(&self, n: AsId) -> Option<u16> {
        let b = self.class_len[n.index()];
        if b >> 5 == RouteClass::Unreachable as u8 {
            return None;
        }
        match b & LEN_OVERFLOW {
            LEN_OVERFLOW => {
                let key = n.index() as u16;
                let i = self
                    .len_ovf
                    .binary_search_by_key(&key, |&(id, _)| id)
                    .expect("overflowed length present in side list");
                Some(self.len_ovf[i].1)
            }
            l => Some(l as u16),
        }
    }
    #[inline]
    fn route_class(&self, n: AsId) -> RouteClass {
        class_of(self.class_len[n.index()])
    }
    #[inline]
    fn tiebreak_set(&self, n: AsId) -> &[u32] {
        let i = n.index();
        &self.tb[self.tb_off[i] as usize..self.tb_off[i + 1] as usize]
    }
    #[inline]
    fn order(&self) -> &[u32] {
        self.order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flows::UtilityAccumulator;
    use crate::secure::SecureSet;
    use crate::tiebreak::{HashTieBreak, LowestAsnTieBreak};
    use crate::tree::TreePolicy;
    use sbgp_asgraph::gen::{generate, GenParams};
    use sbgp_asgraph::{AsGraphBuilder, Weights};

    fn views_match<T: TieBreaker + ?Sized>(
        g: &AsGraph,
        atlas: &RoutingAtlas,
        d: AsId,
        tiebreaker: &T,
    ) {
        let mut ctx = DestContext::new(g.len());
        ctx.compute(g, d, tiebreaker);
        let mut scratch = AtlasScratch::new();
        let view = atlas.get(d, &mut scratch).expect("stored destination");
        assert_eq!(view.dest(), RouteContext::dest(&ctx));
        assert_eq!(view.order(), RouteContext::order(&ctx));
        for x in g.nodes() {
            assert_eq!(view.route_len(x), ctx.route_len(x), "len at {x}");
            assert_eq!(view.route_class(x), ctx.route_class(x), "class at {x}");
            assert_eq!(view.tiebreak_set(x), ctx.tiebreak_set(x), "tb at {x}");
        }
    }

    #[test]
    fn atlas_views_equal_fresh_contexts_both_tiebreakers() {
        let g = generate(&GenParams::new(120, 9)).graph;
        for threads in [1, 4] {
            let atlas = RoutingAtlas::build(&g, &HashTieBreak, usize::MAX, threads);
            assert_eq!(atlas.stored(), g.len());
            assert_eq!(atlas.stats().evicted, 0);
            for d in g.nodes() {
                views_match(&g, &atlas, d, &HashTieBreak);
            }
        }
        let atlas = RoutingAtlas::build(&g, &LowestAsnTieBreak, usize::MAX, 2);
        for d in g.nodes() {
            views_match(&g, &atlas, d, &LowestAsnTieBreak);
        }
    }

    /// Utility accumulation through an [`AtlasView`] is bitwise equal
    /// to accumulation through fresh [`DestContext`]s, under both
    /// stub-security policies (the paper's two utility models) and a
    /// partially secure deployment.
    #[test]
    fn atlas_utilities_bitwise_equal_both_policies() {
        let gen = generate(&GenParams::new(150, 42));
        let g = &gen.graph;
        let weights = Weights::with_cp_fraction(g, 0.2);
        let mut secure = SecureSet::new(g.len());
        for i in (0..g.len()).step_by(3) {
            secure.set(AsId(i as u32), true);
        }
        let atlas = RoutingAtlas::build(g, &HashTieBreak, usize::MAX, 2);
        for policy in [
            TreePolicy::default(),
            TreePolicy {
                stubs_prefer_secure: false,
            },
        ] {
            let mut fresh = UtilityAccumulator::new(g.len());
            let mut via_atlas = UtilityAccumulator::new(g.len());
            let mut ctx = DestContext::new(g.len());
            let mut scratch = AtlasScratch::new();
            for d in g.nodes() {
                ctx.compute(g, d, &HashTieBreak);
                fresh.add_destination(g, &ctx, &secure, policy, &weights);
                let view = atlas.get(d, &mut scratch).unwrap();
                via_atlas.add_destination(g, &view, &secure, policy, &weights);
            }
            // Bitwise: the compressed read path must not perturb a
            // single f64 operation.
            assert_eq!(fresh.u_out, via_atlas.u_out);
            assert_eq!(fresh.u_in, via_atlas.u_in);
        }
    }

    /// Lengths ≥ 31 spill to the side list and decode exactly: a long
    /// provider chain gives the head a 39-hop customer route.
    #[test]
    fn long_chain_overflows_length_encoding() {
        let n = 40;
        let mut b = AsGraphBuilder::new();
        b.add_nodes(1, n);
        for i in 0..n - 1 {
            // i provides transit to i+1: a pure provider chain.
            b.add_provider_customer(AsId(i as u32), AsId(i as u32 + 1))
                .unwrap();
        }
        let g = b.build().unwrap();
        let atlas = RoutingAtlas::build(&g, &HashTieBreak, usize::MAX, 1);
        let mut scratch = AtlasScratch::new();
        let view = atlas.get(AsId(n as u32 - 1), &mut scratch).unwrap();
        assert_eq!(view.route_len(AsId(0)), Some(n as u16 - 1));
        assert_eq!(view.route_class(AsId(0)), RouteClass::Customer);
        for d in g.nodes() {
            views_match(&g, &atlas, d, &HashTieBreak);
        }
    }

    #[test]
    fn budget_evicts_suffix_and_counts_misses() {
        let g = generate(&GenParams::new(100, 4)).graph;
        let full = RoutingAtlas::build(&g, &HashTieBreak, usize::MAX, 2);
        let per_dest = full.stats().bytes / g.len();
        // Room for roughly half the destinations.
        let budget = per_dest * (g.len() / 2);
        let small = RoutingAtlas::build(&g, &HashTieBreak, budget, 2);
        let stored = small.stored();
        assert!(stored > 0 && stored < g.len(), "stored {stored}");
        assert_eq!(small.stats().evicted, g.len() - stored);
        assert!(small.stats().bytes <= budget);
        // Stored prefix is exactly the low ids; the rest miss.
        let mut scratch = AtlasScratch::new();
        for d in g.nodes() {
            let hit = small.get(d, &mut scratch).is_some();
            assert_eq!(hit, d.index() < stored, "dest {d}");
            if hit {
                views_match(&g, &small, d, &HashTieBreak);
            }
        }
        let s = small.stats();
        assert!(s.hits > 0 && s.misses > 0);
    }

    /// Property: across seeds and budget fractions, eviction
    /// accounting balances (`stored + evicted == n`) and
    /// `AtlasStats.bytes`/`raw_bytes` equal the independently
    /// recomputed per-destination sums — the arena truth, not a
    /// pre-flatten estimate.
    #[test]
    fn eviction_accounting_matches_arena_truth() {
        for seed in [1, 7, 23] {
            let g = generate(&GenParams::new(90, seed)).graph;
            // Per-destination compressed and raw sizes, recomputed
            // independently of the atlas build path.
            let mut ctx = DestContext::new(g.len());
            let sizes: Vec<(usize, usize)> = g
                .nodes()
                .map(|d| {
                    ctx.compute(&g, d, &HashTieBreak);
                    let c = CompressedCtx::from_context(d, &ctx);
                    (c.bytes(), c.raw_bytes)
                })
                .collect();
            let total: usize = sizes.iter().map(|&(b, _)| b).sum();
            for denom in [1, 2, 3, 8, 1000] {
                let budget = total / denom;
                for threads in [1, 3] {
                    let atlas = RoutingAtlas::build(&g, &HashTieBreak, budget, threads);
                    let s = atlas.stats();
                    assert_eq!(s.stored + s.evicted, g.len(), "seed {seed} denom {denom}");
                    let expect_bytes: usize = sizes[..s.stored].iter().map(|&(b, _)| b).sum();
                    let expect_raw: usize = sizes[..s.stored].iter().map(|&(_, r)| r).sum();
                    assert_eq!(s.bytes, expect_bytes, "seed {seed} denom {denom}");
                    assert_eq!(s.raw_bytes, expect_raw, "seed {seed} denom {denom}");
                    assert!(s.bytes <= budget);
                    // The next destination must not have fit.
                    if s.stored < g.len() {
                        assert!(s.bytes + sizes[s.stored].0 > budget);
                    }
                }
            }
        }
    }

    #[test]
    fn compression_beats_dense_layout() {
        let g = generate(&GenParams::new(300, 11)).graph;
        let atlas = RoutingAtlas::build(&g, &HashTieBreak, usize::MAX, 2);
        let s = atlas.stats();
        assert!(
            s.raw_bytes > s.bytes,
            "raw {} packed {}",
            s.raw_bytes,
            s.bytes
        );
        assert!(
            s.compression_ratio() > 2.0,
            "ratio {:.2}",
            s.compression_ratio()
        );
    }

    #[test]
    fn zero_budget_stores_nothing() {
        let g = generate(&GenParams::new(100, 1)).graph;
        let atlas = RoutingAtlas::build(&g, &HashTieBreak, 0, 2);
        assert_eq!(atlas.stored(), 0);
        assert_eq!(atlas.stats().evicted, g.len());
        let mut scratch = AtlasScratch::new();
        assert!(atlas.get(AsId(0), &mut scratch).is_none());
    }
}
