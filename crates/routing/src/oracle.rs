//! A deliberately naive, path-vector BGP simulator used as a testing
//! oracle.
//!
//! This module re-implements the Appendix A semantics the slow way:
//! every node holds its full best AS path, nodes synchronously re-rank
//! the paths their neighbors export (GR2), and the system iterates to
//! a fixpoint. Lemma G.1 guarantees convergence under these policies.
//!
//! Nothing in the simulator proper uses this module — it exists so the
//! optimized [`DestContext`](crate::DestContext) +
//! [`compute_tree`](crate::compute_tree) pipeline can be validated
//! against an independent implementation (see the crate's integration
//! tests).

use crate::secure::SecureSet;
use crate::tiebreak::TieBreaker;
use crate::tree::TreePolicy;
use sbgp_asgraph::{AsGraph, AsId};

/// The converged outcome of the naive simulation for one destination.
#[derive(Clone, Debug)]
pub struct OracleOutcome {
    /// Best AS path per node (`[node, ..., dest]`), `None` if no route.
    pub paths: Vec<Option<Vec<AsId>>>,
    /// Whether the node's best path is fully secure.
    pub secure: Vec<bool>,
    /// Number of synchronous iterations until fixpoint.
    pub iterations: usize,
}

impl OracleOutcome {
    /// The chosen next hop of `n`, if it has a route and is not the
    /// destination.
    pub fn next_hop(&self, n: AsId) -> Option<AsId> {
        self.paths[n.index()]
            .as_ref()
            .and_then(|p| p.get(1))
            .copied()
    }

    /// The AS-hop length of `n`'s best path, if any.
    pub fn path_len(&self, n: AsId) -> Option<usize> {
        self.paths[n.index()].as_ref().map(|p| p.len() - 1)
    }
}

/// A ranked candidate: (LP class, length, security flag, tiebreak key)
/// plus the path itself.
type RankedPath = ((u8, usize, u8, u64), Vec<AsId>);

/// Relationship rank of neighbor `m` from `x`'s perspective
/// (0 customer, 1 peer, 2 provider) — the LP step.
fn lp_rank(g: &AsGraph, x: AsId, m: AsId) -> u8 {
    g.relationship(x, m)
        .expect("candidate must be a neighbor")
        .preference_rank()
}

/// Whether `m` may export its current best path to neighbor `x` under
/// GR2: always to customers; to peers/providers only customer routes
/// (or `m`'s own prefix).
fn exports_to(g: &AsGraph, m: AsId, x: AsId, m_path: &[AsId], dest: AsId) -> bool {
    if m == dest {
        return true;
    }
    // x is m's customer?
    if g.customers(m).binary_search(&x).is_ok() {
        return true;
    }
    // Otherwise only customer routes propagate: m's next hop must be
    // m's customer.
    let next = m_path[1];
    g.customers(m).binary_search(&next).is_ok()
}

/// Run the naive path-vector simulation for `dest` under deployment
/// state `secure_set`.
///
/// # Panics
/// Panics if the system fails to converge within `2·|V| + 10`
/// synchronous iterations (which would contradict Lemma G.1 and
/// indicates a bug).
pub fn converge<T: TieBreaker + ?Sized>(
    g: &AsGraph,
    dest: AsId,
    secure_set: &SecureSet,
    policy: TreePolicy,
    tiebreaker: &T,
) -> OracleOutcome {
    let n = g.len();
    let mut paths: Vec<Option<Vec<AsId>>> = vec![None; n];
    paths[dest.index()] = Some(vec![dest]);

    let all_secure = |p: &[AsId]| p.iter().all(|&a| secure_set.get(a));

    let max_iters = 2 * n + 10;
    let mut iterations = 0;
    loop {
        iterations += 1;
        assert!(
            iterations <= max_iters,
            "oracle failed to converge for dest {dest} (Lemma G.1 violated?)"
        );
        let mut changed = false;
        let mut next_paths = paths.clone();
        for x in g.nodes() {
            if x == dest {
                continue;
            }
            let applies_secp = secure_set.get(x) && (policy.stubs_prefer_secure || !g.is_stub(x));
            let mut best: Option<RankedPath> = None;
            for &m in g.neighbors(x) {
                let Some(mp) = paths[m.index()].as_ref() else {
                    continue;
                };
                if mp.contains(&x) || !exports_to(g, m, x, mp, dest) {
                    continue;
                }
                let mut cand = Vec::with_capacity(mp.len() + 1);
                cand.push(x);
                cand.extend_from_slice(mp);
                let sec_flag = if applies_secp && all_secure(&cand) {
                    0
                } else {
                    1
                };
                let rank = (
                    lp_rank(g, x, m),
                    cand.len() - 1,
                    sec_flag,
                    tiebreaker.key(g, x, m),
                );
                if best.as_ref().is_none_or(|(r, _)| rank < *r) {
                    best = Some((rank, cand));
                }
            }
            let new = best.map(|(_, p)| p);
            if new != paths[x.index()] {
                changed = true;
            }
            next_paths[x.index()] = new;
        }
        paths = next_paths;
        if !changed {
            break;
        }
    }

    let secure: Vec<bool> = paths
        .iter()
        .map(|p| p.as_ref().is_some_and(|p| all_secure(p)))
        .collect();
    OracleOutcome {
        paths,
        secure,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tiebreak::LowestAsnTieBreak;
    use sbgp_asgraph::AsGraphBuilder;

    fn diamond() -> (AsGraph, AsId, AsId, AsId, AsId) {
        let mut b = AsGraphBuilder::new();
        let s = b.add_node(10);
        let ia = b.add_node(20);
        let ib = b.add_node(30);
        let d = b.add_node(40);
        b.add_provider_customer(s, ia).unwrap();
        b.add_provider_customer(s, ib).unwrap();
        b.add_provider_customer(ia, d).unwrap();
        b.add_provider_customer(ib, d).unwrap();
        let g = b.build().unwrap();
        (g, s, ia, ib, d)
    }

    #[test]
    fn oracle_insecure_diamond() {
        let (g, s, ia, _ib, d) = diamond();
        let secure = SecureSet::new(g.len());
        let out = converge(&g, d, &secure, TreePolicy::default(), &LowestAsnTieBreak);
        assert_eq!(out.paths[s.index()].as_ref().unwrap(), &vec![s, ia, d]);
        assert!(!out.secure[s.index()]);
    }

    #[test]
    fn oracle_secure_diamond_switches() {
        let (g, s, _ia, ib, d) = diamond();
        let mut secure = SecureSet::new(g.len());
        for x in [s, ib, d] {
            secure.set(x, true);
        }
        let out = converge(&g, d, &secure, TreePolicy::default(), &LowestAsnTieBreak);
        assert_eq!(out.paths[s.index()].as_ref().unwrap(), &vec![s, ib, d]);
        assert!(out.secure[s.index()]);
    }

    #[test]
    fn oracle_respects_gr2_no_peer_transit() {
        // a --peer-- b --peer-- c: a must NOT reach c through b.
        let mut builder = AsGraphBuilder::new();
        let a = builder.add_node(1);
        let b = builder.add_node(2);
        let c = builder.add_node(3);
        builder.add_peer_peer(a, b).unwrap();
        builder.add_peer_peer(b, c).unwrap();
        let g = builder.build().unwrap();
        let secure = SecureSet::new(g.len());
        let out = converge(&g, c, &secure, TreePolicy::default(), &LowestAsnTieBreak);
        assert!(out.paths[a.index()].is_none(), "peer-peer-peer is a valley");
        assert!(out.paths[b.index()].is_some());
    }

    #[test]
    fn oracle_valley_free_up_then_down() {
        // customer -> provider -> peer -> provider's customer is legal.
        let mut builder = AsGraphBuilder::new();
        let t1 = builder.add_node(1);
        let t2 = builder.add_node(2);
        let c1 = builder.add_node(11);
        let c2 = builder.add_node(12);
        builder.add_peer_peer(t1, t2).unwrap();
        builder.add_provider_customer(t1, c1).unwrap();
        builder.add_provider_customer(t2, c2).unwrap();
        let g = builder.build().unwrap();
        let secure = SecureSet::new(g.len());
        let out = converge(&g, c2, &secure, TreePolicy::default(), &LowestAsnTieBreak);
        assert_eq!(
            out.paths[c1.index()].as_ref().unwrap(),
            &vec![c1, t1, t2, c2]
        );
    }

    #[test]
    fn converges_quickly() {
        let (g, _, _, _, d) = diamond();
        let secure = SecureSet::new(g.len());
        let out = converge(&g, d, &secure, TreePolicy::default(), &LowestAsnTieBreak);
        assert!(out.iterations <= 5);
    }
}
