//! Shared vocabulary for adversarial routing scenarios.
//!
//! The paper defers "resiliency to attack" under partial deployment to
//! future work (Section 6.4); the related literature fills the gap:
//! Goldberg et al. \[15\] measure origin hijacks, Lychev, Goldberg &
//! Schapira analyze protocol-downgrade attacks that collapse the gains
//! of partial S\*BGP, and route leaks evade path validation entirely.
//! This module defines the attack models, defense policies, and
//! per-node verdicts used by both the fast scenario engine
//! (`sbgp_core::scenario`) and the slow reference implementation
//! ([`crate::scenario_oracle`]) so the two can be compared
//! outcome-for-outcome.
//!
//! ## Attack semantics
//!
//! All attacks target one `(attacker, victim)` pair: both announce the
//! victim's prefix and the rest of the graph converges on whichever
//! origin each AS (transitively) prefers. What differs is the shape of
//! the attacker's announcement and which defenses can see through it:
//!
//! * **Origin hijack** — the attacker originates the prefix itself
//!   (path `[a]`). The origination is unattestable, so *path
//!   validators* (fully secure ASes, per the asymmetric simplex rule)
//!   reject it outright, and *ROV origin filters* reject it too.
//! * **One-hop path forgery** — the attacker announces `[a, v]`: the
//!   true origin with a fabricated adjacency. ROV passes (the origin
//!   is valid). Path validators reject it **iff the victim is
//!   secure** — only then are the victim's announcements signed, which
//!   makes an unsigned `[a, v]` provably bogus; an insecure victim's
//!   routes are unsigned anyway, so the forgery is indistinguishable
//!   from a legitimate route.
//! * **Route leak** — the attacker takes its *real* best route to the
//!   victim and exports it to every neighbor, violating GR2. Every
//!   signature on the path is genuine, so neither path validation nor
//!   ROV can reject it — a leaked route through a fully secure chain
//!   even *ranks* as secure. "Deceived" here means intercepted: the
//!   traffic flows through the attacker before reaching the victim.
//! * **Protocol downgrade** (Lychev-style) — an origin hijack mounted
//!   over a downgraded (insecure) session, so path validation never
//!   happens and secure ASes accept the bogus route like anyone else.
//!   ROV still rejects it: origin filtering is an out-of-band check
//!   that no session downgrade can bypass. Under security-third this
//!   attacker is at least as effective as the plain hijacker — the
//!   Lychev monotonicity claim the invariant tests pin down.

use crate::secure::SecureSet;
use sbgp_asgraph::{AsGraph, AsId};
use std::fmt;

/// What the attacker announces for the victim's prefix.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AttackModel {
    /// The classic origin hijack: the attacker originates the prefix.
    OriginHijack,
    /// One-hop path forgery: the attacker announces `[a, victim]`.
    PathForgery,
    /// The attacker leaks its real route to the victim to everyone.
    RouteLeak,
    /// An origin hijack that evades path validation via session
    /// downgrade; only ROV origin filtering still stops it.
    Downgrade,
}

impl AttackModel {
    /// Every attack model, in canonical (CSV/CLI) order.
    pub const ALL: [AttackModel; 4] = [
        AttackModel::OriginHijack,
        AttackModel::PathForgery,
        AttackModel::RouteLeak,
        AttackModel::Downgrade,
    ];

    /// Short label used in CSVs and `--attacks` values.
    pub fn label(self) -> &'static str {
        match self {
            AttackModel::OriginHijack => "hijack",
            AttackModel::PathForgery => "forgery",
            AttackModel::RouteLeak => "leak",
            AttackModel::Downgrade => "downgrade",
        }
    }

    /// Does the announcement carry fabricated path material? Forged
    /// routes can never rank as fully secure — the attacker cannot
    /// produce the missing signatures. A route leak is the exception:
    /// every signature on it is real.
    pub fn forges_path(self) -> bool {
        !matches!(self, AttackModel::RouteLeak)
    }

    /// Parse one `--attacks` item.
    pub fn parse(s: &str) -> Result<AttackModel, String> {
        match s {
            "hijack" => Ok(AttackModel::OriginHijack),
            "forgery" => Ok(AttackModel::PathForgery),
            "leak" => Ok(AttackModel::RouteLeak),
            "downgrade" => Ok(AttackModel::Downgrade),
            other => Err(format!(
                "unknown attack {other:?} (expected hijack|forgery|leak|downgrade|all)"
            )),
        }
    }

    /// Parse a comma-separated `--attacks` list; `all` expands to
    /// every model. Duplicates are rejected — a repeated attack would
    /// silently double its weight in every surface.
    pub fn parse_list(s: &str) -> Result<Vec<AttackModel>, String> {
        if s.trim() == "all" {
            return Ok(Self::ALL.to_vec());
        }
        let mut out = Vec::new();
        for part in s.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let a = AttackModel::parse(part)?;
            if out.contains(&a) {
                return Err(format!("duplicate attack {part:?}"));
            }
            out.push(a);
        }
        if out.is_empty() {
            return Err("no attacks given".into());
        }
        Ok(out)
    }
}

impl fmt::Display for AttackModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Where the security comparison sits in the route-selection ranking
/// (Lychev et al.'s three deployment dials).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SecurityRank {
    /// Security before everything: (sec, LP, length, TB).
    First,
    /// Security after LP, before length: (LP, sec, length, TB).
    Second,
    /// The paper's Appendix A ranking: (LP, length, sec, TB).
    Third,
}

/// A defense configuration: where security ranks, whether ROV origin
/// filtering is on, and how simplex stubs behave.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ScenarioPolicy {
    /// Position of the security comparison in the ranking.
    pub rank: SecurityRank,
    /// ROV-style origin filtering: every secure AS (including simplex
    /// stubs — ROV needs only the RPKI, not a BGPsec session) drops
    /// origin-invalid routes.
    pub rov: bool,
    /// If `true`, secure stubs validate paths like full deployments
    /// (the symmetric model); if `false` (the paper's Section 2.2.1
    /// simplex asymmetry), stubs sign but cannot validate.
    pub stubs_validate: bool,
    /// Whether secure stubs apply the SecP preference step (the
    /// existing `TreePolicy::stubs_prefer_secure` knob).
    pub stubs_prefer_secure: bool,
}

impl ScenarioPolicy {
    /// The paper's baseline: security third, no ROV, simplex stubs.
    pub fn security_third() -> ScenarioPolicy {
        ScenarioPolicy {
            rank: SecurityRank::Third,
            rov: false,
            stubs_validate: false,
            stubs_prefer_secure: true,
        }
    }

    /// Security second (above path length), otherwise the baseline.
    pub fn security_second() -> ScenarioPolicy {
        ScenarioPolicy {
            rank: SecurityRank::Second,
            ..ScenarioPolicy::security_third()
        }
    }

    /// Security first (above LP), otherwise the baseline. This is the
    /// one ranking that can abandon Gao–Rexford preferences, so
    /// convergence is no longer guaranteed — non-converged scenarios
    /// are quarantined, not ground through.
    pub fn security_first() -> ScenarioPolicy {
        ScenarioPolicy {
            rank: SecurityRank::First,
            ..ScenarioPolicy::security_third()
        }
    }

    /// The same policy with ROV origin filtering switched on.
    pub fn with_rov(mut self) -> ScenarioPolicy {
        self.rov = true;
        self
    }

    /// The same policy with symmetric (validating) stubs.
    pub fn symmetric(mut self) -> ScenarioPolicy {
        self.stubs_validate = true;
        self
    }

    /// Canonical label: `sec1|sec2|sec3` plus `+rov` / `+symmetric`
    /// suffixes. [`ScenarioPolicy::parse`] round-trips it.
    pub fn label(&self) -> String {
        let mut s = String::from(match self.rank {
            SecurityRank::First => "sec1",
            SecurityRank::Second => "sec2",
            SecurityRank::Third => "sec3",
        });
        if self.rov {
            s.push_str("+rov");
        }
        if self.stubs_validate {
            s.push_str("+symmetric");
        }
        if !self.stubs_prefer_secure {
            s.push_str("+stubs-ignore");
        }
        s
    }

    /// Parse one `--policies` item (the [`ScenarioPolicy::label`]
    /// vocabulary).
    pub fn parse(s: &str) -> Result<ScenarioPolicy, String> {
        let mut parts = s.split('+');
        let base = parts.next().unwrap_or_default();
        let mut p = match base {
            "sec1" => ScenarioPolicy::security_first(),
            "sec2" => ScenarioPolicy::security_second(),
            "sec3" => ScenarioPolicy::security_third(),
            other => {
                return Err(format!(
                    "unknown policy {other:?} (expected sec1|sec2|sec3 with optional \
                     +rov/+symmetric/+stubs-ignore suffixes)"
                ))
            }
        };
        for suffix in parts {
            match suffix {
                "rov" => p.rov = true,
                "symmetric" => p.stubs_validate = true,
                "stubs-ignore" => p.stubs_prefer_secure = false,
                other => return Err(format!("unknown policy suffix {other:?} in {s:?}")),
            }
        }
        Ok(p)
    }

    /// Parse a comma-separated `--policies` list, rejecting
    /// duplicates.
    pub fn parse_list(s: &str) -> Result<Vec<ScenarioPolicy>, String> {
        let mut out = Vec::new();
        for part in s.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let p = ScenarioPolicy::parse(part)?;
            if out.contains(&p) {
                return Err(format!("duplicate policy {part:?}"));
            }
            out.push(p);
        }
        if out.is_empty() {
            return Err("no policies given".into());
        }
        Ok(out)
    }

    /// Does `x` apply the SecP preference step in `state`?
    pub fn applies_secp(&self, g: &AsGraph, state: &SecureSet, x: AsId) -> bool {
        state.get(x) && (self.stubs_prefer_secure || !g.is_stub(x))
    }

    /// Does `x` validate announcement paths in `state`? Fully secure
    /// ISPs and CPs always do; stubs only under the symmetric model.
    pub fn validates_path(&self, g: &AsGraph, state: &SecureSet, x: AsId) -> bool {
        state.get(x) && (self.stubs_validate || !g.is_stub(x))
    }

    /// Does `x` reject a route derived from the attacker's
    /// announcement? This is the whole defense matrix (see the module
    /// docs for why each cell is what it is).
    pub fn rejects_attacker_route(
        &self,
        g: &AsGraph,
        state: &SecureSet,
        attack: AttackModel,
        victim: AsId,
        x: AsId,
    ) -> bool {
        let path_reject = self.validates_path(g, state, x)
            && match attack {
                AttackModel::OriginHijack => true,
                AttackModel::PathForgery => state.get(victim),
                AttackModel::RouteLeak | AttackModel::Downgrade => false,
            };
        let rov_reject = self.rov
            && state.get(x)
            && matches!(attack, AttackModel::OriginHijack | AttackModel::Downgrade);
        path_reject || rov_reject
    }

    /// The comparable selection key for a candidate with the given LP
    /// class, hop length, security flag (0 = secure preferred), and
    /// tiebreak key. Smaller wins.
    pub fn rank_key(&self, lp: u8, len: usize, sec_flag: u8, tb: u64) -> (u64, u64, u64, u64) {
        match self.rank {
            SecurityRank::First => (sec_flag as u64, lp as u64, len as u64, tb),
            SecurityRank::Second => (lp as u64, sec_flag as u64, len as u64, tb),
            SecurityRank::Third => (lp as u64, len as u64, sec_flag as u64, tb),
        }
    }
}

/// Where one AS's converged route for the contested prefix leads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The attacker or the victim themselves (excluded from counts).
    Origin,
    /// The chosen route passes through the attacker.
    Deceived,
    /// The chosen route reaches the victim without the attacker.
    ReachedVictim,
    /// No route survived filtering at all.
    Unreachable,
}

/// The converged outcome of one scenario.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScenarioOutcome {
    /// Per-node verdicts (index = node id).
    pub verdicts: Vec<Verdict>,
    /// Non-origin ASes routing through the attacker.
    pub deceived: usize,
    /// Non-origin ASes reaching the victim cleanly.
    pub reached_victim: usize,
    /// Non-origin ASes with no route at all.
    pub unreachable: usize,
    /// Synchronous iterations of the two-origin fixpoint (the route
    /// leak's clean-route prephase is not counted).
    pub iterations: usize,
}

impl ScenarioOutcome {
    /// Tally counts from per-node verdicts.
    pub fn tally(verdicts: Vec<Verdict>, iterations: usize) -> ScenarioOutcome {
        let mut out = ScenarioOutcome {
            verdicts,
            deceived: 0,
            reached_victim: 0,
            unreachable: 0,
            iterations,
        };
        for v in &out.verdicts {
            match v {
                Verdict::Origin => {}
                Verdict::Deceived => out.deceived += 1,
                Verdict::ReachedVictim => out.reached_victim += 1,
                Verdict::Unreachable => out.unreachable += 1,
            }
        }
        out
    }

    /// Fraction of non-origin ASes deceived (`0.0` on an empty tally).
    pub fn deceived_fraction(&self) -> f64 {
        let total = self.deceived + self.reached_victim + self.unreachable;
        if total == 0 {
            0.0
        } else {
            self.deceived as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attack_labels_round_trip() {
        for a in AttackModel::ALL {
            assert_eq!(AttackModel::parse(a.label()).unwrap(), a);
            assert_eq!(a.to_string(), a.label());
        }
        assert_eq!(AttackModel::parse_list("all").unwrap().len(), 4);
        assert_eq!(
            AttackModel::parse_list("hijack, leak").unwrap(),
            vec![AttackModel::OriginHijack, AttackModel::RouteLeak]
        );
        assert!(AttackModel::parse_list("hijack,hijack").is_err());
        assert!(AttackModel::parse_list("prefixsquat").is_err());
        assert!(AttackModel::parse_list("").is_err());
    }

    #[test]
    fn policy_labels_round_trip() {
        let all = [
            ScenarioPolicy::security_third(),
            ScenarioPolicy::security_third().with_rov(),
            ScenarioPolicy::security_second().symmetric(),
            ScenarioPolicy::security_first().with_rov().symmetric(),
            ScenarioPolicy {
                stubs_prefer_secure: false,
                ..ScenarioPolicy::security_third()
            },
        ];
        for p in all {
            assert_eq!(
                ScenarioPolicy::parse(&p.label()).unwrap(),
                p,
                "{}",
                p.label()
            );
        }
        assert!(ScenarioPolicy::parse("sec4").is_err());
        assert!(ScenarioPolicy::parse("sec3+loud").is_err());
        assert!(ScenarioPolicy::parse_list("sec3,sec3").is_err());
    }

    #[test]
    fn rank_key_orders_by_policy() {
        // A longer secure route vs a shorter insecure one: security
        // third prefers short, security second and first prefer secure.
        let secure_long = |p: &ScenarioPolicy| p.rank_key(0, 5, 0, 9);
        let insecure_short = |p: &ScenarioPolicy| p.rank_key(0, 2, 1, 1);
        let p3 = ScenarioPolicy::security_third();
        assert!(insecure_short(&p3) < secure_long(&p3));
        let p2 = ScenarioPolicy::security_second();
        assert!(secure_long(&p2) < insecure_short(&p2));
        let p1 = ScenarioPolicy::security_first();
        assert!(secure_long(&p1) < insecure_short(&p1));
        // LP still dominates security under sec2.
        assert!(p2.rank_key(0, 2, 1, 0) < p2.rank_key(1, 2, 0, 0));
        // But not under sec1.
        assert!(p1.rank_key(1, 2, 0, 0) < p1.rank_key(0, 2, 1, 0));
    }

    #[test]
    fn defense_matrix() {
        use sbgp_asgraph::AsGraphBuilder;
        let mut b = AsGraphBuilder::new();
        let isp = b.add_node(1);
        let stub = b.add_node(2);
        let victim = b.add_node(3);
        b.add_provider_customer(isp, stub).unwrap();
        b.add_provider_customer(isp, victim).unwrap();
        let g = b.build().unwrap();
        let mut state = SecureSet::new(g.len());
        state.set(isp, true);
        state.set(stub, true);

        let p = ScenarioPolicy::security_third();
        // Hijack: rejected by the validating ISP, not the simplex stub.
        assert!(p.rejects_attacker_route(&g, &state, AttackModel::OriginHijack, victim, isp));
        assert!(!p.rejects_attacker_route(&g, &state, AttackModel::OriginHijack, victim, stub));
        // Symmetric stubs validate too.
        let sym = p.symmetric();
        assert!(sym.rejects_attacker_route(&g, &state, AttackModel::OriginHijack, victim, stub));
        // Forgery: only rejectable once the victim signs.
        assert!(!p.rejects_attacker_route(&g, &state, AttackModel::PathForgery, victim, isp));
        state.set(victim, true);
        assert!(p.rejects_attacker_route(&g, &state, AttackModel::PathForgery, victim, isp));
        // Leak: invisible to every defense.
        for pol in [p, p.with_rov(), sym.with_rov()] {
            assert!(!pol.rejects_attacker_route(&g, &state, AttackModel::RouteLeak, victim, isp));
        }
        // Downgrade: path validation is blind, ROV is not — and ROV
        // works at simplex stubs too.
        assert!(!p.rejects_attacker_route(&g, &state, AttackModel::Downgrade, victim, isp));
        let rov = p.with_rov();
        assert!(rov.rejects_attacker_route(&g, &state, AttackModel::Downgrade, victim, isp));
        assert!(rov.rejects_attacker_route(&g, &state, AttackModel::Downgrade, victim, stub));
    }
}
