//! A deliberately naive two-origin path-vector simulator used as the
//! testing oracle for adversarial scenarios.
//!
//! Like [`crate::oracle`], this re-implements the semantics the slow
//! way: every node holds its full best AS path as a `Vec`, nodes
//! synchronously re-rank everything their neighbors export, and the
//! system iterates to a fixpoint — except here *two* origins announce
//! the contested prefix (the victim legitimately, the attacker per its
//! [`AttackModel`]), candidates derived from the attacker are filtered
//! by the [`ScenarioPolicy`] defense matrix, and security can sit at
//! any position of the ranking.
//!
//! Nothing in the simulator proper uses this module — it exists so the
//! fast worklist engine in `sbgp_core::scenario` (shared-tail cons
//! paths, dirty-set scheduling, the `compute_tree` shortcut for route
//! leak prephases) can be differentially checked against an
//! independent implementation, path-for-path and verdict-for-verdict.
//!
//! Unlike [`crate::oracle`], non-convergence is a value, not a panic:
//! security-first rankings abandon Gao–Rexford preferences, so Lemma
//! G.1's convergence guarantee does not apply and a dispute wheel can
//! legitimately spin forever.

use crate::secure::SecureSet;
use crate::threat::{AttackModel, ScenarioOutcome, ScenarioPolicy, Verdict};
use crate::tiebreak::TieBreaker;
use sbgp_asgraph::{AsGraph, AsId};

/// The converged reference result: full paths plus the tallied
/// outcome.
#[derive(Clone, Debug)]
pub struct OracleRun {
    /// Best AS path per node (`[node, ..., origin]`), `None` if no
    /// route survived filtering.
    pub paths: Vec<Option<Vec<AsId>>>,
    /// Tallied verdicts and iteration count.
    pub outcome: ScenarioOutcome,
}

/// The fixpoint exhausted its `2·|V| + 10` iteration budget (possible
/// under security-first rankings, or on malformed graphs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OracleExhausted {
    /// The iteration budget that was exhausted.
    pub iterations: usize,
}

/// A ranked candidate: the policy-ordered key plus the path itself.
type RankedPath = ((u64, u64, u64, u64), Vec<AsId>);

/// Relationship rank of neighbor `m` from `x`'s perspective
/// (0 customer, 1 peer, 2 provider) — the LP step.
fn lp_rank(g: &AsGraph, x: AsId, m: AsId) -> u8 {
    g.relationship(x, m)
        .expect("candidate must be a neighbor")
        .preference_rank()
}

/// Run the naive two-origin fixpoint for one scenario.
///
/// Outcome semantics are defined in [`crate::threat`]; `iterations`
/// counts only the two-origin phase (a route leak's clean-route
/// prephase runs under its own budget but is not part of the outcome).
///
/// # Errors
/// Returns [`OracleExhausted`] if either fixpoint phase fails to
/// settle within `2·|V| + 10` synchronous iterations.
///
/// # Panics
/// Panics if `attacker == victim`.
pub fn converge_scenario<T: TieBreaker + ?Sized>(
    g: &AsGraph,
    state: &SecureSet,
    policy: &ScenarioPolicy,
    attack: AttackModel,
    attacker: AsId,
    victim: AsId,
    tiebreaker: &T,
) -> Result<OracleRun, OracleExhausted> {
    assert_ne!(attacker, victim, "attacker cannot target itself");
    let announcement = match attack {
        AttackModel::OriginHijack | AttackModel::Downgrade => Some(vec![attacker]),
        AttackModel::PathForgery => Some(vec![attacker, victim]),
        AttackModel::RouteLeak => {
            // Prephase: the attacker's real best route to the victim in
            // the clean (no-attack) world is what it leaks.
            let (clean, _) = fixpoint(g, state, policy, victim, None, tiebreaker)?;
            clean[attacker.index()].clone()
        }
    };
    let (paths, iterations) = fixpoint(
        g,
        state,
        policy,
        victim,
        Some((attacker, attack, announcement)),
        tiebreaker,
    )?;
    let verdicts: Vec<Verdict> = g
        .nodes()
        .map(|x| {
            if x == attacker || x == victim {
                Verdict::Origin
            } else {
                match &paths[x.index()] {
                    None => Verdict::Unreachable,
                    Some(p) if p.contains(&attacker) => Verdict::Deceived,
                    Some(_) => Verdict::ReachedVictim,
                }
            }
        })
        .collect();
    Ok(OracleRun {
        paths,
        outcome: ScenarioOutcome::tally(verdicts, iterations),
    })
}

/// One synchronous path-vector fixpoint. With `attack_cfg = None` this
/// is the clean single-origin world (the route-leak prephase); with
/// `Some((attacker, attack, announcement))` the attacker is pinned to
/// its announcement (or pinned routeless if it had none to leak) and
/// exports to every neighbor — that GR2 violation *is* the attack.
#[allow(clippy::type_complexity)]
fn fixpoint<T: TieBreaker + ?Sized>(
    g: &AsGraph,
    state: &SecureSet,
    policy: &ScenarioPolicy,
    victim: AsId,
    attack_cfg: Option<(AsId, AttackModel, Option<Vec<AsId>>)>,
    tiebreaker: &T,
) -> Result<(Vec<Option<Vec<AsId>>>, usize), OracleExhausted> {
    let n = g.len();
    let mut paths: Vec<Option<Vec<AsId>>> = vec![None; n];
    paths[victim.index()] = Some(vec![victim]);
    let pinned_attacker = attack_cfg.as_ref().map(|(a, _, _)| *a);
    if let Some((a, _, ann)) = &attack_cfg {
        paths[a.index()] = ann.clone();
    }

    let all_secure = |p: &[AsId]| p.iter().all(|&x| state.get(x));
    let exports = |m: AsId, x: AsId, mp: &[AsId]| -> bool {
        if m == victim || Some(m) == pinned_attacker {
            return true; // origins (and the leaker) announce to everyone
        }
        if g.customers(m).binary_search(&x).is_ok() {
            return true;
        }
        g.customers(m).binary_search(&mp[1]).is_ok()
    };

    let max_iters = 2 * n + 10;
    let mut iterations = 0;
    loop {
        iterations += 1;
        if iterations > max_iters {
            return Err(OracleExhausted {
                iterations: max_iters,
            });
        }
        let mut changed = false;
        let mut next = paths.clone();
        for x in g.nodes() {
            if x == victim || Some(x) == pinned_attacker {
                continue;
            }
            let applies_secp = policy.applies_secp(g, state, x);
            let mut best: Option<RankedPath> = None;
            for &m in g.neighbors(x) {
                let Some(mp) = paths[m.index()].as_ref() else {
                    continue;
                };
                if mp.contains(&x) || !exports(m, x, mp) {
                    continue;
                }
                // The attacker is pinned, so a path contains it iff the
                // path descends from its announcement.
                let from_attacker = pinned_attacker.is_some_and(|a| mp.contains(&a));
                if from_attacker {
                    let (_, attack, _) = attack_cfg.as_ref().expect("attacker is pinned");
                    if policy.rejects_attacker_route(g, state, *attack, victim, x) {
                        continue;
                    }
                }
                let mut cand = Vec::with_capacity(mp.len() + 1);
                cand.push(x);
                cand.extend_from_slice(mp);
                // Forged announcements can never rank as secure — the
                // attacker cannot produce the victim's signatures. A
                // leaked route's signatures are all genuine.
                let forged = from_attacker
                    && attack_cfg
                        .as_ref()
                        .is_some_and(|(_, attack, _)| attack.forges_path());
                let sec_flag = u8::from(!(applies_secp && !forged && all_secure(&cand)));
                let key = policy.rank_key(
                    lp_rank(g, x, m),
                    cand.len() - 1,
                    sec_flag,
                    tiebreaker.key(g, x, m),
                );
                if best.as_ref().is_none_or(|(k, _)| key < *k) {
                    best = Some((key, cand));
                }
            }
            let new = best.map(|(_, p)| p);
            if new != paths[x.index()] {
                changed = true;
            }
            next[x.index()] = new;
        }
        paths = next;
        if !changed {
            break;
        }
    }
    Ok((paths, iterations))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tiebreak::LowestAsnTieBreak;
    use sbgp_asgraph::AsGraphBuilder;

    /// v and a are stubs of competing ISPs under a common Tier-1.
    fn contest() -> (AsGraph, AsId, AsId, AsId, AsId, AsId) {
        let mut b = AsGraphBuilder::new();
        let t = b.add_node(1);
        let ia = b.add_node(10);
        let ib = b.add_node(20);
        let v = b.add_node(100);
        let a = b.add_node(200);
        b.add_provider_customer(t, ia).unwrap();
        b.add_provider_customer(t, ib).unwrap();
        b.add_provider_customer(ia, v).unwrap();
        b.add_provider_customer(ib, a).unwrap();
        let g = b.build().unwrap();
        (g, t, ia, ib, v, a)
    }

    #[test]
    fn hijack_matches_the_resilience_seed_semantics() {
        let (g, _t, _ia, ib, v, a) = contest();
        let state = SecureSet::new(g.len());
        let run = converge_scenario(
            &g,
            &state,
            &ScenarioPolicy::security_third(),
            AttackModel::OriginHijack,
            a,
            v,
            &LowestAsnTieBreak,
        )
        .unwrap();
        // ib is the attacker's provider: deceived. ia and t reach v.
        assert_eq!(run.outcome.deceived, 1);
        assert_eq!(run.outcome.reached_victim, 2);
        assert_eq!(run.outcome.unreachable, 0);
        assert_eq!(run.outcome.verdicts[ib.index()], Verdict::Deceived);
    }

    #[test]
    fn leak_intercepts_through_the_attackers_real_route() {
        // A multihomed attacker: a buys transit from both t1 and t2,
        // the victim sits under t1, and t1–t2 peer. a's real route is
        // [a, t1, v]; leaking it hands t2 a 3-hop *customer* route
        // that LP prefers over its own 2-hop peer route [t2, t1, v].
        let mut b = AsGraphBuilder::new();
        let t1 = b.add_node(1);
        let t2 = b.add_node(2);
        let v = b.add_node(100);
        let a = b.add_node(200);
        b.add_peer_peer(t1, t2).unwrap();
        b.add_provider_customer(t1, v).unwrap();
        b.add_provider_customer(t1, a).unwrap();
        b.add_provider_customer(t2, a).unwrap();
        let g = b.build().unwrap();
        // Even under FULL deployment the leak works: every signature
        // on the leaked route is genuine, so validation has nothing to
        // reject — the Lychev-adjacent point the engine must express.
        let mut state = SecureSet::new(g.len());
        for x in [t1, t2, v, a] {
            state.set(x, true);
        }
        let run = converge_scenario(
            &g,
            &state,
            &ScenarioPolicy::security_third().with_rov(),
            AttackModel::RouteLeak,
            a,
            v,
            &LowestAsnTieBreak,
        )
        .unwrap();
        assert_eq!(run.paths[t2.index()].as_ref().unwrap(), &vec![t2, a, t1, v]);
        assert_eq!(run.outcome.verdicts[t2.index()], Verdict::Deceived);
        // t1 hears the leak back but it contains t1 itself: rejected.
        assert_eq!(run.outcome.verdicts[t1.index()], Verdict::ReachedVictim);
        assert_eq!(run.outcome.deceived, 1);
    }

    #[test]
    fn downgrade_beats_hijack_where_validators_were_the_shield() {
        let (g, t, ia, ib, v, a) = contest();
        let mut state = SecureSet::new(g.len());
        for x in [t, ia, ib, v] {
            state.set(x, true);
        }
        let p = ScenarioPolicy::security_third();
        let hijack = converge_scenario(
            &g,
            &state,
            &p,
            AttackModel::OriginHijack,
            a,
            v,
            &LowestAsnTieBreak,
        )
        .unwrap();
        let down = converge_scenario(
            &g,
            &state,
            &p,
            AttackModel::Downgrade,
            a,
            v,
            &LowestAsnTieBreak,
        )
        .unwrap();
        assert_eq!(hijack.outcome.deceived, 0, "validators stop the hijack");
        assert!(down.outcome.deceived >= 1, "the downgrade walks past them");
        // ...but ROV restores the defense.
        let rov = p.with_rov();
        let down_rov = converge_scenario(
            &g,
            &state,
            &rov,
            AttackModel::Downgrade,
            a,
            v,
            &LowestAsnTieBreak,
        )
        .unwrap();
        assert_eq!(down_rov.outcome.deceived, 0);
    }
}
