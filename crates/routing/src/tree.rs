//! The fast routing tree algorithm (Appendix C.2).

use crate::context::RouteContext;
use crate::secure::SecureSet;
use sbgp_asgraph::{AsGraph, AsId};

/// `next_hop` sentinel for the destination itself and for unreachable
/// nodes.
pub const NO_NEXT_HOP: u32 = u32::MAX;

/// Which ASes apply the SecP (secure-path tiebreak) step.
///
/// Secure ISPs and CPs always break ties in favor of fully secure
/// routes (Section 2.2.2). Stubs run *simplex* S\*BGP and may either
/// trust their providers and break ties on security too, or ignore
/// security entirely — the paper evaluates both (Section 6.7), so it
/// is a policy knob here.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TreePolicy {
    /// Whether secure stubs break ties in favor of secure paths.
    pub stubs_prefer_secure: bool,
}

impl Default for TreePolicy {
    fn default() -> Self {
        TreePolicy {
            stubs_prefer_secure: true,
        }
    }
}

/// The resolved routing forest for one destination and one deployment
/// state: every node's chosen next hop and whether its chosen path is
/// *fully secure* (every AS on it, including the node and the
/// destination, is secure — Section 2.2.2's "secure path").
#[derive(Clone, Debug)]
pub struct RouteTree {
    /// Chosen next hop per node (`NO_NEXT_HOP` for the destination and
    /// unreachable nodes).
    pub next_hop: Vec<u32>,
    /// Whether the node's chosen path to the destination is fully
    /// secure.
    pub secure: Vec<bool>,
}

impl RouteTree {
    /// An empty tree for an `n`-node graph.
    pub fn new(n: usize) -> Self {
        RouteTree {
            next_hop: vec![NO_NEXT_HOP; n],
            secure: vec![false; n],
        }
    }
}

/// Resolve the routing forest for `ctx`'s destination under deployment
/// state `secure_set` — the Appendix C.2 algorithm.
///
/// Processes nodes in ascending best-route-length order (so every
/// tiebreak-set member is already resolved) and, per node:
///
/// * determines whether a fully secure path exists through any
///   tiebreak-set member;
/// * picks the next hop: the lowest-keyed member with a secure path if
///   the node applies SecP and one exists, otherwise the lowest-keyed
///   member overall (the insecure-world choice);
/// * marks the node's path secure iff the node itself is secure and
///   the chosen member's path is secure.
///
/// `O(t·|V|)` where `t` is the mean tiebreak-set size.
pub fn compute_tree<C: RouteContext + ?Sized>(
    g: &AsGraph,
    ctx: &C,
    secure_set: &SecureSet,
    policy: TreePolicy,
    out: &mut RouteTree,
) {
    let n = g.len();
    debug_assert_eq!(out.next_hop.len(), n);
    out.next_hop.fill(NO_NEXT_HOP);
    out.secure.fill(false);

    let d = ctx.dest();
    out.secure[d.index()] = secure_set.get(d);

    for &xi in ctx.order() {
        let x = AsId(xi);
        if x == d {
            continue;
        }
        let tb = ctx.tiebreak_set(x);
        debug_assert!(!tb.is_empty());
        let node_secure = secure_set.get(x);
        let applies_secp = node_secure && (policy.stubs_prefer_secure || !g.is_stub(x));
        let mut chosen = tb[0];
        if applies_secp && !out.secure[chosen as usize] {
            if let Some(&m) = tb.iter().find(|&&m| out.secure[m as usize]) {
                chosen = m;
            }
        }
        out.next_hop[x.index()] = chosen;
        out.secure[x.index()] = node_secure && out.secure[chosen as usize];
    }
}

/// Extract the full AS path from `src` to the destination (inclusive
/// of both), or `None` if `src` has no route.
pub fn extract_path<C: RouteContext + ?Sized>(
    ctx: &C,
    tree: &RouteTree,
    src: AsId,
) -> Option<Vec<AsId>> {
    ctx.route_len(src)?;
    let mut path = vec![src];
    let mut cur = src;
    while cur != ctx.dest() {
        let nh = tree.next_hop[cur.index()];
        debug_assert_ne!(nh, NO_NEXT_HOP);
        cur = AsId(nh);
        path.push(cur);
        debug_assert!(path.len() <= ctx.reachable(), "next-hop cycle");
    }
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::DestContext;
    use crate::tiebreak::LowestAsnTieBreak;
    use sbgp_asgraph::AsGraphBuilder;

    /// The DIAMOND of Figure 2: a source `s` (Tier-1-ish) can reach a
    /// multihomed stub `d` via two competing ISPs `a` (ASN 20) and `b`
    /// (ASN 30).
    fn diamond() -> (AsGraph, AsId, AsId, AsId, AsId) {
        let mut b = AsGraphBuilder::new();
        let s = b.add_node(10);
        let ia = b.add_node(20);
        let ib = b.add_node(30);
        let d = b.add_node(40);
        b.add_provider_customer(s, ia).unwrap();
        b.add_provider_customer(s, ib).unwrap();
        b.add_provider_customer(ia, d).unwrap();
        b.add_provider_customer(ib, d).unwrap();
        let g = b.build().unwrap();
        (g, s, ia, ib, d)
    }

    #[test]
    fn insecure_world_uses_lowest_key() {
        let (g, s, ia, _ib, d) = diamond();
        let mut ctx = DestContext::new(g.len());
        ctx.compute(&g, d, &LowestAsnTieBreak);
        let secure = SecureSet::new(g.len());
        let mut tree = RouteTree::new(g.len());
        compute_tree(&g, &ctx, &secure, TreePolicy::default(), &mut tree);
        assert_eq!(tree.next_hop[s.index()], ia.0, "ASN 20 beats ASN 30");
        assert!(!tree.secure[s.index()]);
    }

    #[test]
    fn secp_steals_traffic() {
        // Secure s + d + ISP b (ASN 30): s now routes via b even though
        // a has the lower ASN — the Figure 2 dynamics.
        let (g, s, ia, ib, d) = diamond();
        let mut ctx = DestContext::new(g.len());
        ctx.compute(&g, d, &LowestAsnTieBreak);
        let mut secure = SecureSet::new(g.len());
        for x in [s, ib, d] {
            secure.set(x, true);
        }
        let mut tree = RouteTree::new(g.len());
        compute_tree(&g, &ctx, &secure, TreePolicy::default(), &mut tree);
        assert_eq!(tree.next_hop[s.index()], ib.0);
        assert!(tree.secure[s.index()]);
        assert!(tree.secure[ib.index()]);
        assert!(!tree.secure[ia.index()]);
    }

    #[test]
    fn partially_secure_path_not_preferred() {
        // Only s and b secure, d insecure: no fully secure path exists,
        // so s sticks with the tiebreak winner a.
        let (g, s, ia, ib, d) = diamond();
        let mut ctx = DestContext::new(g.len());
        ctx.compute(&g, d, &LowestAsnTieBreak);
        let mut secure = SecureSet::new(g.len());
        secure.set(s, true);
        secure.set(ib, true);
        let mut tree = RouteTree::new(g.len());
        compute_tree(&g, &ctx, &secure, TreePolicy::default(), &mut tree);
        assert_eq!(tree.next_hop[s.index()], ia.0);
        assert!(!tree.secure[s.index()]);
    }

    #[test]
    fn insecure_node_ignores_security() {
        // b and d secure but s insecure: s cannot validate, so it uses
        // its plain tiebreak (a), and its path is not secure.
        let (g, s, ia, ib, d) = diamond();
        let mut ctx = DestContext::new(g.len());
        ctx.compute(&g, d, &LowestAsnTieBreak);
        let mut secure = SecureSet::new(g.len());
        secure.set(ib, true);
        secure.set(d, true);
        let mut tree = RouteTree::new(g.len());
        compute_tree(&g, &ctx, &secure, TreePolicy::default(), &mut tree);
        assert_eq!(tree.next_hop[s.index()], ia.0);
        assert!(!tree.secure[s.index()]);
        assert!(tree.secure[ib.index()], "b itself has a secure 1-hop path");
    }

    #[test]
    fn stub_policy_knob() {
        // Make s a stub by giving it a provider-only position: rebuild
        // the diamond with s as a multihomed stub *source*.
        let mut b = AsGraphBuilder::new();
        let ia = b.add_node(20);
        let ib = b.add_node(30);
        let s = b.add_node(40); // stub, customer of both ISPs
        let d = b.add_node(50); // destination stub, customer of both
        b.add_provider_customer(ia, s).unwrap();
        b.add_provider_customer(ib, s).unwrap();
        b.add_provider_customer(ia, d).unwrap();
        b.add_provider_customer(ib, d).unwrap();
        let g = b.build().unwrap();
        let mut ctx = DestContext::new(g.len());
        ctx.compute(&g, d, &LowestAsnTieBreak);
        let mut secure = SecureSet::new(g.len());
        for x in [s, ib, d] {
            secure.set(x, true);
        }
        let mut tree = RouteTree::new(g.len());
        // Stubs break ties on security: s picks secure ib.
        compute_tree(
            &g,
            &ctx,
            &secure,
            TreePolicy {
                stubs_prefer_secure: true,
            },
            &mut tree,
        );
        assert_eq!(tree.next_hop[s.index()], ib.0);
        assert!(tree.secure[s.index()]);
        // Stubs ignore security: s falls back to lowest ASN ia.
        compute_tree(
            &g,
            &ctx,
            &secure,
            TreePolicy {
                stubs_prefer_secure: false,
            },
            &mut tree,
        );
        assert_eq!(tree.next_hop[s.index()], ia.0);
        assert!(!tree.secure[s.index()]);
    }

    #[test]
    fn path_extraction() {
        let (g, s, ia, _, d) = diamond();
        let mut ctx = DestContext::new(g.len());
        ctx.compute(&g, d, &LowestAsnTieBreak);
        let secure = SecureSet::new(g.len());
        let mut tree = RouteTree::new(g.len());
        compute_tree(&g, &ctx, &secure, TreePolicy::default(), &mut tree);
        assert_eq!(extract_path(&ctx, &tree, s).unwrap(), vec![s, ia, d]);
        assert_eq!(extract_path(&ctx, &tree, d).unwrap(), vec![d]);
    }
}
