//! The set of secure (S\*BGP-deployed) ASes.

use sbgp_asgraph::AsId;

/// A deployment state: which ASes have deployed S\*BGP (fully or
/// simplex — the routing layer does not distinguish, because both sign
/// their announcements and therefore count toward a path being
/// *fully secure*).
///
/// Implemented as a plain bit vector; `O(1)` flip/query, cheap clone
/// (the simulator clones one per projected state).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct SecureSet {
    bits: Vec<u64>,
    len: usize,
}

impl SecureSet {
    /// All-insecure state for an `n`-node graph.
    pub fn new(n: usize) -> Self {
        SecureSet {
            bits: vec![0; n.div_ceil(64)],
            len: n,
        }
    }

    /// Number of nodes the set ranges over (not the number secure).
    pub fn capacity(&self) -> usize {
        self.len
    }

    /// Whether node `n` is secure.
    #[inline]
    pub fn get(&self, n: AsId) -> bool {
        let i = n.index();
        debug_assert!(i < self.len);
        (self.bits[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Mark node `n` secure (`true`) or insecure (`false`).
    #[inline]
    pub fn set(&mut self, n: AsId, secure: bool) {
        let i = n.index();
        debug_assert!(i < self.len);
        let mask = 1u64 << (i % 64);
        if secure {
            self.bits[i / 64] |= mask;
        } else {
            self.bits[i / 64] &= !mask;
        }
    }

    /// Toggle node `n`; returns the new value.
    #[inline]
    pub fn flip(&mut self, n: AsId) -> bool {
        let i = n.index();
        self.bits[i / 64] ^= 1u64 << (i % 64);
        self.get(n)
    }

    /// Number of secure nodes.
    pub fn count(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterate over the secure node ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = AsId> + '_ {
        self.bits.iter().enumerate().flat_map(|(w, &bits)| {
            let mut bits = bits;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let b = bits.trailing_zeros();
                bits &= bits - 1;
                Some(AsId((w * 64) as u32 + b))
            })
        })
    }

    /// Overwrite this set with the contents of `other` without
    /// reallocating (both must range over the same node count).
    pub fn assign(&mut self, other: &SecureSet) {
        debug_assert_eq!(self.len, other.len);
        self.bits.copy_from_slice(&other.bits);
    }

    /// A compact fingerprint of the state, used by the simulator's
    /// oscillation detector (Section 7.2) to recognize revisited
    /// states.
    pub fn fingerprint(&self) -> u64 {
        // FNV-1a over the words; cheap and deterministic.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &w in &self.bits {
            h ^= w;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_flip() {
        let mut s = SecureSet::new(130);
        assert!(!s.get(AsId(0)));
        s.set(AsId(0), true);
        s.set(AsId(64), true);
        s.set(AsId(129), true);
        assert!(s.get(AsId(0)) && s.get(AsId(64)) && s.get(AsId(129)));
        assert_eq!(s.count(), 3);
        assert!(!s.flip(AsId(64)));
        assert_eq!(s.count(), 2);
    }

    #[test]
    fn iter_ascending() {
        let mut s = SecureSet::new(200);
        for i in [3u32, 64, 65, 199] {
            s.set(AsId(i), true);
        }
        let got: Vec<u32> = s.iter().map(|a| a.0).collect();
        assert_eq!(got, vec![3, 64, 65, 199]);
    }

    #[test]
    fn fingerprint_distinguishes_states() {
        let mut a = SecureSet::new(100);
        let mut b = SecureSet::new(100);
        assert_eq!(a.fingerprint(), b.fingerprint());
        a.set(AsId(5), true);
        assert_ne!(a.fingerprint(), b.fingerprint());
        b.set(AsId(5), true);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn empty_iter() {
        let s = SecureSet::new(10);
        assert_eq!(s.iter().count(), 0);
    }
}
