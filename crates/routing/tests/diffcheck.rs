//! The differential checker from the outside: silence on healthy
//! instances (property-tested over arbitrary Gao–Rexford graphs), a
//! guaranteed alarm on seeded mutations, and genuine shrinking of the
//! alarm down to a small replayable counterexample.

use proptest::prelude::*;
use sbgp_asgraph::fault::{apply_faults, FaultPlan};
use sbgp_asgraph::gen::{generate, GenParams};
use sbgp_asgraph::{AsGraph, AsGraphBuilder, AsId};
use sbgp_routing::diffcheck::{self, Mismatch};
use sbgp_routing::{compute_tree, DestContext, HashTieBreak, RouteTree, SecureSet, TreePolicy};

/// Arbitrary valley-free-able topology: provider edges point from
/// lower to higher index (GR1 by construction), peer edges anywhere.
fn arb_graph() -> impl Strategy<Value = (AsGraph, Vec<bool>)> {
    (5usize..28).prop_flat_map(|n| {
        let edges =
            proptest::collection::vec((0u32..n as u32, 0u32..n as u32, any::<bool>()), n..n * 3);
        let secure_bits = proptest::collection::vec(any::<bool>(), n);
        (Just(n), edges, secure_bits).prop_map(|(n, edges, secure_bits)| {
            let mut b = AsGraphBuilder::new();
            for i in 0..n {
                b.add_node(((i as u32) * 7919) % 10007 + 1);
            }
            for (x, y, is_peer) in edges {
                let (a, c) = (AsId(x.min(y)), AsId(x.max(y)));
                let _ = if is_peer {
                    b.add_peer_peer(a, c)
                } else {
                    b.add_provider_customer(a, c)
                };
            }
            (b.build().unwrap(), secure_bits)
        })
    })
}

fn secure_from_bits(bits: &[bool]) -> SecureSet {
    let mut s = SecureSet::new(bits.len());
    for (i, &on) in bits.iter().enumerate() {
        s.set(AsId(i as u32), on);
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A healthy pipeline never trips the audit: next hops, lengths,
    /// route classes, and secure flags all agree with the oracle on
    /// arbitrary topologies, states, and both tree policies.
    #[test]
    fn audit_is_silent_on_healthy_instances(
        (g, bits) in arb_graph(),
        stubs_prefer in any::<bool>(),
    ) {
        let secure = secure_from_bits(&bits);
        let policy = TreePolicy { stubs_prefer_secure: stubs_prefer };
        for d in g.nodes() {
            let m = diffcheck::audit(&g, d, &secure, policy, &HashTieBreak);
            prop_assert!(m.is_none(), "false alarm at dest {}: {}", d, m.unwrap());
        }
    }
}

/// The cross-graph check a seeded link-failure mutation induces:
/// compute the fast tree on the *mutated* graph but audit it against
/// the oracle on the intact one. Any destination whose routes crossed a
/// dropped link must trip the checker — and because the mutation is a
/// pure function of the (sub)graph, the mismatch survives shrinking.
fn mutated_check(
    plan: &FaultPlan,
    policy: TreePolicy,
) -> impl Fn(&AsGraph, &SecureSet, AsId) -> Option<Mismatch> + '_ {
    move |g: &AsGraph, s: &SecureSet, d: AsId| {
        let (fg, _) = apply_faults(g, plan).ok()?;
        let mut ctx = DestContext::new(g.len());
        let mut tree = RouteTree::new(g.len());
        ctx.compute(&fg, d, &HashTieBreak);
        compute_tree(&fg, &ctx, s, policy, &mut tree);
        diffcheck::compare(g, &ctx, &tree, s, policy, &HashTieBreak)
    }
}

#[test]
fn seeded_mutation_fires_the_checker_and_shrinks_to_a_minimal_instance() {
    let g = generate(&GenParams::tiny(13)).graph;
    let mut secure = SecureSet::new(g.len());
    for n in g.nodes().step_by(3) {
        secure.set(n, true);
    }
    let policy = TreePolicy::default();
    let plan = FaultPlan::links(0.25, 0xfee1_dead);
    let check = mutated_check(&plan, policy);

    // Find a destination whose routing the mutation visibly changed.
    let found = g
        .nodes()
        .find_map(|d| check(&g, &secure, d).map(|m| (d, m)));
    let (dest, initial) = found.expect("25% link loss must move some route");

    let cex = diffcheck::shrink(&g, &secure, dest, policy, initial, &check, 10_000);
    assert!(cex.reproduced, "deterministic mutation must replay");
    assert!(!cex.budget_exhausted, "small graph shrinks within budget");
    assert!(
        cex.edges < g.num_edges(),
        "shrinking should drop edges: {} vs {}",
        cex.edges,
        g.num_edges()
    );
    assert!(cex.nodes <= g.len());

    // The artifact is replayable: its graph text re-parses, and the
    // recorded destination exists in it.
    let artifact = cex.artifact();
    assert!(
        artifact.contains("sbgp-diffcheck counterexample"),
        "{artifact}"
    );
    let graph_text: String = artifact
        .lines()
        .skip_while(|l| l.starts_with('#'))
        .map(|l| format!("{l}\n"))
        .collect();
    let re = sbgp_asgraph::io::read_graph(std::io::Cursor::new(graph_text)).unwrap();
    assert_eq!(re.len(), cex.nodes);
    assert_eq!(re.num_edges(), cex.edges);
    assert!(re.node_by_asn(cex.dest_asn).is_some());

    // And the shrunk instance still trips the very same check.
    let mut sub_secure = SecureSet::new(re.len());
    for &asn in &cex.secure_asns {
        sub_secure.set(re.node_by_asn(asn).unwrap(), true);
    }
    let sub_dest = re.node_by_asn(cex.dest_asn).unwrap();
    assert!(
        check(&re, &sub_secure, sub_dest).is_some(),
        "minimal counterexample must still reproduce"
    );
}

#[test]
fn tree_corruption_is_flagged_even_when_not_graph_reproducible() {
    // Corrupt a computed tree directly (a transient bit-flip, not a
    // function of the graph): compare() must flag it, and shrink()
    // must honestly report that the full instance does not replay.
    let g = generate(&GenParams::tiny(5)).graph;
    let secure = SecureSet::new(g.len());
    let policy = TreePolicy::default();
    let mut ctx = DestContext::new(g.len());
    let mut tree = RouteTree::new(g.len());
    let dest = g
        .nodes()
        .find(|&d| {
            ctx.compute(&g, d, &HashTieBreak);
            g.nodes().any(|x| x != d && ctx.tiebreak_set(x).len() >= 2)
        })
        .expect("a tiny generated graph has a contested destination");
    ctx.compute(&g, dest, &HashTieBreak);
    compute_tree(&g, &ctx, &secure, policy, &mut tree);

    let x = g
        .nodes()
        .find(|&x| x != dest && ctx.tiebreak_set(x).len() >= 2)
        .unwrap();
    let current = tree.next_hop[x.index()];
    let other = ctx
        .tiebreak_set(x)
        .iter()
        .find(|&&m| m != current)
        .copied()
        .unwrap();
    tree.next_hop[x.index()] = other;

    let m = diffcheck::compare(&g, &ctx, &tree, &secure, policy, &HashTieBreak)
        .expect("corrupted next hop must be flagged");
    let cex = diffcheck::shrink(
        &g,
        &secure,
        dest,
        policy,
        m,
        |g2, s2, d2| diffcheck::audit(g2, d2, s2, policy, &HashTieBreak),
        512,
    );
    assert!(
        !cex.reproduced,
        "a healthy recompute cannot replay a bit-flip"
    );
    assert!(
        cex.artifact().contains("reproduced: false"),
        "{}",
        cex.artifact()
    );
}
