//! Cross-validation: the optimized DestContext + fast-routing-tree
//! pipeline must agree with the naive path-vector oracle on class,
//! length, next hop, and path security — for random topologies, random
//! deployment states, both tiebreakers, and both stub policies.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sbgp_asgraph::gen::{generate, GenParams};
use sbgp_asgraph::{AsGraph, AsId};
use sbgp_routing::{
    compute_tree, oracle, DestContext, HashTieBreak, LowestAsnTieBreak, RouteClass, RouteTree,
    SecureSet, TieBreaker, TreePolicy, NO_NEXT_HOP,
};

fn random_secure_set(g: &AsGraph, density: f64, rng: &mut StdRng) -> SecureSet {
    let mut s = SecureSet::new(g.len());
    for n in g.nodes() {
        if rng.gen_bool(density) {
            s.set(n, true);
        }
    }
    s
}

fn check_destination<T: TieBreaker>(
    g: &AsGraph,
    d: AsId,
    secure: &SecureSet,
    policy: TreePolicy,
    tiebreaker: &T,
) {
    let mut ctx = DestContext::new(g.len());
    ctx.compute(g, d, tiebreaker);
    let mut tree = RouteTree::new(g.len());
    compute_tree(g, &ctx, secure, policy, &mut tree);
    let oracle_out = oracle::converge(g, d, secure, policy, tiebreaker);

    for x in g.nodes() {
        let fast_len = ctx.route_len(x).map(|l| l as usize);
        let slow_len = oracle_out.path_len(x);
        assert_eq!(
            fast_len, slow_len,
            "length mismatch at {x} for dest {d} (fast {fast_len:?} vs oracle {slow_len:?})"
        );
        if x == d {
            continue;
        }
        match (tree.next_hop[x.index()], oracle_out.next_hop(x)) {
            (NO_NEXT_HOP, None) => {}
            (nh, Some(onh)) => assert_eq!(
                nh, onh.0,
                "next hop mismatch at {x} for dest {d}: fast {nh} vs oracle {onh}"
            ),
            (nh, None) => panic!("fast found route {nh} at {x}, oracle found none"),
        }
        assert_eq!(
            tree.secure[x.index()],
            oracle_out.secure[x.index()],
            "security mismatch at {x} for dest {d}"
        );
        // Route class consistency: oracle path's first hop relationship.
        if let Some(p) = &oracle_out.paths[x.index()] {
            let rel = g.relationship(x, p[1]).unwrap();
            let expect = match rel {
                sbgp_asgraph::Relationship::Customer => RouteClass::Customer,
                sbgp_asgraph::Relationship::Peer => RouteClass::Peer,
                sbgp_asgraph::Relationship::Provider => RouteClass::Provider,
            };
            assert_eq!(ctx.route_class(x), expect, "class mismatch at {x}");
        }
    }
}

#[test]
fn fast_pipeline_matches_oracle_on_generated_graphs() {
    let mut rng = StdRng::seed_from_u64(0xfeed);
    for seed in 0..4u64 {
        let g = generate(&GenParams::new(120, seed)).graph;
        let dests: Vec<AsId> = (0..g.len()).step_by(9).map(|i| AsId(i as u32)).collect();
        for density in [0.0, 0.2, 0.7] {
            let secure = random_secure_set(&g, density, &mut rng);
            for stubs_prefer_secure in [true, false] {
                let policy = TreePolicy {
                    stubs_prefer_secure,
                };
                for &d in &dests {
                    check_destination(&g, d, &secure, policy, &HashTieBreak);
                    check_destination(&g, d, &secure, policy, &LowestAsnTieBreak);
                }
            }
        }
    }
}

#[test]
fn fully_secure_world_secures_every_reachable_path() {
    let g = generate(&GenParams::new(100, 5)).graph;
    let mut secure = SecureSet::new(g.len());
    for n in g.nodes() {
        secure.set(n, true);
    }
    let mut ctx = DestContext::new(g.len());
    let mut tree = RouteTree::new(g.len());
    for d in g.nodes().take(20) {
        ctx.compute(&g, d, &HashTieBreak);
        compute_tree(&g, &ctx, &secure, TreePolicy::default(), &mut tree);
        for x in g.nodes() {
            if ctx.route_len(x).is_some() {
                assert!(tree.secure[x.index()], "{x} insecure in all-secure world");
            }
        }
    }
}

#[test]
fn secure_flag_matches_extracted_path() {
    // Property: tree.secure[x] == every AS on the extracted path secure.
    let mut rng = StdRng::seed_from_u64(7);
    let g = generate(&GenParams::new(150, 9)).graph;
    let secure = random_secure_set(&g, 0.5, &mut rng);
    let mut ctx = DestContext::new(g.len());
    let mut tree = RouteTree::new(g.len());
    for d in g.nodes().step_by(11) {
        ctx.compute(&g, d, &HashTieBreak);
        compute_tree(&g, &ctx, &secure, TreePolicy::default(), &mut tree);
        for x in g.nodes() {
            if let Some(path) = sbgp_routing::extract_path(&ctx, &tree, x) {
                let all = path.iter().all(|&a| secure.get(a));
                assert_eq!(tree.secure[x.index()], all, "path {path:?}");
            }
        }
    }
}

#[test]
fn lengths_are_consistent_along_chosen_paths() {
    // Property: len[x] == len[next_hop[x]] + 1 for every routed node.
    let g = generate(&GenParams::new(200, 13)).graph;
    let mut rng = StdRng::seed_from_u64(1);
    let secure = random_secure_set(&g, 0.3, &mut rng);
    let mut ctx = DestContext::new(g.len());
    let mut tree = RouteTree::new(g.len());
    for d in g.nodes().step_by(17) {
        ctx.compute(&g, d, &HashTieBreak);
        compute_tree(&g, &ctx, &secure, TreePolicy::default(), &mut tree);
        for x in g.nodes() {
            if x == d {
                continue;
            }
            if let Some(l) = ctx.route_len(x) {
                let nh = AsId(tree.next_hop[x.index()]);
                assert_eq!(ctx.route_len(nh), Some(l - 1));
            }
        }
    }
}
