//! Property-based tests: the optimized routing pipeline against the
//! naive oracle on arbitrary (not just generator-shaped) topologies,
//! plus conservation laws on flows and utilities.

use proptest::prelude::*;
use sbgp_asgraph::{AsGraph, AsGraphBuilder, AsId, Weights};
use sbgp_routing::{
    accumulate_flows, add_utilities, compute_tree, oracle, DestContext, HashTieBreak,
    LowestAsnTieBreak, RouteClass, RouteTree, SecureSet, TreePolicy,
};

/// Arbitrary valley-free-able topology: provider edges point from
/// lower to higher index (GR1 by construction), peer edges anywhere.
fn arb_graph() -> impl Strategy<Value = (AsGraph, Vec<bool>)> {
    (5usize..28).prop_flat_map(|n| {
        let edges =
            proptest::collection::vec((0u32..n as u32, 0u32..n as u32, any::<bool>()), n..n * 3);
        let secure_bits = proptest::collection::vec(any::<bool>(), n);
        (Just(n), edges, secure_bits).prop_map(|(n, edges, secure_bits)| {
            let mut b = AsGraphBuilder::new();
            for i in 0..n {
                // Scrambled ASNs so tiebreaks are non-trivial.
                b.add_node(((i as u32) * 7919) % 10007 + 1);
            }
            for (x, y, is_peer) in edges {
                let (a, c) = (AsId(x.min(y)), AsId(x.max(y)));
                let _ = if is_peer {
                    b.add_peer_peer(a, c)
                } else {
                    b.add_provider_customer(a, c)
                };
            }
            (b.build().unwrap(), secure_bits)
        })
    })
}

fn secure_from_bits(bits: &[bool]) -> SecureSet {
    let mut s = SecureSet::new(bits.len());
    for (i, &on) in bits.iter().enumerate() {
        s.set(AsId(i as u32), on);
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Gold standard: the DestContext + fast-tree pipeline agrees with
    /// the naive path-vector oracle on arbitrary topologies, states,
    /// policies, and both tiebreakers.
    #[test]
    fn fast_pipeline_equals_oracle((g, bits) in arb_graph(), stubs_prefer in any::<bool>()) {
        let secure = secure_from_bits(&bits);
        let policy = TreePolicy { stubs_prefer_secure: stubs_prefer };
        let mut ctx = DestContext::new(g.len());
        let mut tree = RouteTree::new(g.len());
        for d in g.nodes() {
            ctx.compute(&g, d, &HashTieBreak);
            compute_tree(&g, &ctx, &secure, policy, &mut tree);
            let o = oracle::converge(&g, d, &secure, policy, &HashTieBreak);
            for x in g.nodes() {
                prop_assert_eq!(
                    ctx.route_len(x).map(usize::from),
                    o.path_len(x),
                    "len mismatch at {} dest {}", x, d
                );
                if x == d { continue; }
                match o.next_hop(x) {
                    Some(nh) => prop_assert_eq!(tree.next_hop[x.index()], nh.0,
                        "next hop mismatch at {} dest {}", x, d),
                    None => prop_assert_eq!(tree.next_hop[x.index()], sbgp_routing::NO_NEXT_HOP),
                }
                prop_assert_eq!(tree.secure[x.index()], o.secure[x.index()],
                    "security mismatch at {} dest {}", x, d);
            }
        }
    }

    /// Flow conservation: the destination's accumulated flow equals
    /// the total origination weight of every routed source.
    #[test]
    fn flow_conservation((g, bits) in arb_graph()) {
        let secure = secure_from_bits(&bits);
        let w = Weights::uniform(&g);
        let mut ctx = DestContext::new(g.len());
        let mut tree = RouteTree::new(g.len());
        let mut flow = Vec::new();
        for d in g.nodes() {
            ctx.compute(&g, d, &LowestAsnTieBreak);
            compute_tree(&g, &ctx, &secure, TreePolicy::default(), &mut tree);
            accumulate_flows(&ctx, &tree, &w, &mut flow);
            let reachable_weight: f64 = ctx
                .order()
                .iter()
                .filter(|&&x| AsId(x) != d)
                .map(|&x| w.get(AsId(x)))
                .sum();
            prop_assert!((flow[d.index()] - reachable_weight).abs() < 1e-9,
                "flow into {} is {} but sources weigh {}", d, flow[d.index()], reachable_weight);
        }
    }

    /// Utility accounting: summed incoming utility equals the total
    /// flow crossing customer edges, and no node earns more incoming
    /// utility than the whole network originates.
    #[test]
    fn utility_accounting((g, bits) in arb_graph()) {
        let secure = secure_from_bits(&bits);
        let w = Weights::uniform(&g);
        let mut ctx = DestContext::new(g.len());
        let mut tree = RouteTree::new(g.len());
        let mut flow = Vec::new();
        let mut u_out = vec![0.0; g.len()];
        let mut u_in = vec![0.0; g.len()];
        for d in g.nodes() {
            ctx.compute(&g, d, &HashTieBreak);
            compute_tree(&g, &ctx, &secure, TreePolicy::default(), &mut tree);
            accumulate_flows(&ctx, &tree, &w, &mut flow);
            add_utilities(&ctx, &tree, &w, &flow, &mut u_out, &mut u_in);
            // Per-destination: incoming utility of each node is at
            // most the total routed weight.
            let total: f64 = flow[d.index()];
            for x in g.nodes() {
                prop_assert!(flow[x.index()] <= total + 1e-9);
            }
        }
        for x in g.nodes() {
            prop_assert!(u_out[x.index()] >= 0.0 && u_in[x.index()] >= 0.0);
        }
    }

    /// Securing more nodes never *removes* secure paths: the set of
    /// (src, dst) pairs with fully secure chosen paths grows
    /// monotonically with the secure set, when everyone applies SecP.
    #[test]
    fn secure_paths_monotone_in_secure_set((g, bits) in arb_graph()) {
        let small = secure_from_bits(&bits);
        let mut big = small.clone();
        // Add every third node.
        for i in (0..g.len()).step_by(3) {
            big.set(AsId(i as u32), true);
        }
        let policy = TreePolicy { stubs_prefer_secure: true };
        let mut ctx = DestContext::new(g.len());
        let mut t_small = RouteTree::new(g.len());
        let mut t_big = RouteTree::new(g.len());
        for d in g.nodes() {
            ctx.compute(&g, d, &HashTieBreak);
            compute_tree(&g, &ctx, &small, policy, &mut t_small);
            compute_tree(&g, &ctx, &big, policy, &mut t_big);
            for x in g.nodes() {
                prop_assert!(
                    !t_small.secure[x.index()] || t_big.secure[x.index()],
                    "securing more nodes broke a secure path at {} dest {}", x, d
                );
            }
        }
    }

    /// The route class invariant: a node with any customer route never
    /// ends up on a peer or provider route (LP dominance).
    #[test]
    fn local_preference_dominates((g, _bits) in arb_graph()) {
        let mut ctx = DestContext::new(g.len());
        for d in g.nodes() {
            ctx.compute(&g, d, &HashTieBreak);
            for x in g.nodes() {
                if x == d { continue; }
                // If any customer of x exports a route (i.e. has a
                // customer-class or self route), x must be Customer class.
                let has_customer_route = g.customers(x).iter().any(|&cst| {
                    matches!(ctx.route_class(cst), RouteClass::Customer | RouteClass::SelfDest)
                });
                if has_customer_route {
                    prop_assert_eq!(ctx.route_class(x), RouteClass::Customer,
                        "{} ignored an available customer route to {}", x, d);
                }
            }
        }
    }
}
