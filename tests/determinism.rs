//! Reproducibility: everything must be a pure function of (seed,
//! parameters) — same results run-to-run and across thread counts.
//! Checkpoint/resume rides on this guarantee: a resumed sweep must be
//! bit-identical to an uninterrupted one, which the lower half of this
//! file pins down.

use sbgp_asgraph::gen::{generate, GenParams};
use sbgp_asgraph::Weights;
use sbgp_core::checkpoint::{params_fingerprint, SweepCheckpoint};
use sbgp_core::{EarlyAdopters, SimConfig, SimResult, Simulation};
use sbgp_routing::HashTieBreak;

fn run(threads: usize, seed: u64) -> (Vec<u32>, usize, Vec<usize>) {
    let g = generate(&GenParams::new(400, seed)).graph;
    let w = Weights::with_cp_fraction(&g, 0.10);
    let cfg = SimConfig {
        theta: 0.05,
        threads,
        ..SimConfig::default()
    };
    let adopters = EarlyAdopters::ContentProvidersPlusTopIsps(5).select(&g);
    let res = Simulation::new(&g, &w, &HashTieBreak, cfg).run(&adopters);
    let secure: Vec<u32> = res.final_state.iter().map(|a| a.0).collect();
    let per_round: Vec<usize> = res.rounds.iter().map(|r| r.turned_on.len()).collect();
    (secure, res.rounds.len(), per_round)
}

#[test]
fn identical_across_repeat_runs() {
    assert_eq!(run(1, 42), run(1, 42));
}

#[test]
fn identical_across_thread_counts() {
    // Floating-point reduction order differs between thread counts,
    // but the Eq. 3 decisions (and hence the trajectory) must not.
    assert_eq!(run(1, 42), run(4, 42));
    assert_eq!(run(1, 7), run(3, 7));
}

#[test]
fn different_seeds_give_different_worlds() {
    assert_ne!(run(1, 42).0, run(1, 43).0);
}

#[test]
fn graph_generation_is_stable_against_itself() {
    let a = generate(&GenParams::new(300, 9));
    let b = generate(&GenParams::new(300, 9));
    let ea: Vec<_> = a.graph.edges().collect();
    let eb: Vec<_> = b.graph.edges().collect();
    assert_eq!(ea, eb);
    assert_eq!(a.ixp_members, b.ixp_members);
}

/// One θ-sweep unit, as the experiments harness runs it.
fn sweep_unit(theta: f64) -> SimResult {
    let g = generate(&GenParams::new(200, 42)).graph;
    let w = Weights::with_cp_fraction(&g, 0.10);
    let cfg = SimConfig {
        theta,
        ..SimConfig::default()
    };
    let adopters = EarlyAdopters::ContentProvidersPlusTopIsps(5).select(&g);
    Simulation::new(&g, &w, &HashTieBreak, cfg).run(&adopters)
}

#[test]
fn checkpoint_round_trip_is_bit_identical() {
    // Serialize a mid-sweep checkpoint, reload it, and verify the
    // stored results are exactly the ones computed — including the
    // f64 bit patterns (the codec stores raw IEEE-754 bits, so no
    // decimal round-trip error can creep in).
    let dir = std::env::temp_dir().join("sbgp_determinism_ckpt");
    let path = dir.join("roundtrip.ckpt");
    let _ = std::fs::remove_file(&path);
    let fp = params_fingerprint(&["ases=200", "seed=42", "cp=0.10"]);

    let mut ckpt = SweepCheckpoint::new(fp);
    for theta in [0.0, 0.05, 0.10] {
        ckpt.insert(format!("theta={theta}"), sweep_unit(theta));
    }
    ckpt.save(&path).unwrap();

    let restored = SweepCheckpoint::load(&path, fp).unwrap();
    for theta in [0.0, 0.05, 0.10] {
        let original = sweep_unit(theta);
        let stored = restored.get(&format!("theta={theta}")).unwrap();
        assert_eq!(*stored, original);
        for (a, b) in original
            .starting_utilities
            .iter()
            .zip(stored.starting_utilities.iter())
        {
            assert_eq!(a.to_bits(), b.to_bits(), "utilities must be bit-exact");
        }
        assert_eq!(original.final_state, stored.final_state);
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn interrupted_sweep_resumes_to_identical_results() {
    // Simulate an interrupted θ-sweep: the first run completes two of
    // four units and checkpoints; the "resumed" run loads them, reuses
    // them verbatim, and computes the rest. The combined results must
    // equal an uninterrupted sweep's, unit for unit.
    let dir = std::env::temp_dir().join("sbgp_determinism_resume");
    let path = dir.join("sweep.ckpt");
    let _ = std::fs::remove_file(&path);
    let fp = params_fingerprint(&["ases=200", "seed=42", "cp=0.10"]);
    let thetas = [0.0, 0.05, 0.10, 0.20];

    // First run: interrupted after two units.
    let mut first = SweepCheckpoint::new(fp);
    for &theta in &thetas[..2] {
        first.insert(format!("theta={theta}"), sweep_unit(theta));
    }
    first.save(&path).unwrap();

    // Resumed run: finish the sweep from the checkpoint.
    let mut resumed = SweepCheckpoint::load(&path, fp).unwrap();
    assert_eq!(resumed.len(), 2, "two units survive the interruption");
    let finished: Vec<SimResult> = thetas
        .iter()
        .map(|theta| {
            let key = format!("theta={theta}");
            match resumed.get(&key) {
                Some(prev) => prev.clone(),
                None => {
                    let r = sweep_unit(*theta);
                    resumed.insert(key, r.clone());
                    r
                }
            }
        })
        .collect();

    // Uninterrupted reference sweep.
    for (theta, from_resume) in thetas.iter().zip(finished.iter()) {
        assert_eq!(*from_resume, sweep_unit(*theta));
    }
    let _ = std::fs::remove_file(&path);
}
