//! Reproducibility: everything must be a pure function of (seed,
//! parameters) — same results run-to-run and across thread counts.

use sbgp_asgraph::gen::{generate, GenParams};
use sbgp_asgraph::Weights;
use sbgp_core::{EarlyAdopters, SimConfig, Simulation};
use sbgp_routing::HashTieBreak;

fn run(threads: usize, seed: u64) -> (Vec<u32>, usize, Vec<usize>) {
    let g = generate(&GenParams::new(400, seed)).graph;
    let w = Weights::with_cp_fraction(&g, 0.10);
    let cfg = SimConfig {
        theta: 0.05,
        threads,
        ..SimConfig::default()
    };
    let adopters = EarlyAdopters::ContentProvidersPlusTopIsps(5).select(&g);
    let res = Simulation::new(&g, &w, &HashTieBreak, cfg).run(&adopters);
    let secure: Vec<u32> = res.final_state.iter().map(|a| a.0).collect();
    let per_round: Vec<usize> = res.rounds.iter().map(|r| r.turned_on.len()).collect();
    (secure, res.rounds.len(), per_round)
}

#[test]
fn identical_across_repeat_runs() {
    assert_eq!(run(1, 42), run(1, 42));
}

#[test]
fn identical_across_thread_counts() {
    // Floating-point reduction order differs between thread counts,
    // but the Eq. 3 decisions (and hence the trajectory) must not.
    assert_eq!(run(1, 42), run(4, 42));
    assert_eq!(run(1, 7), run(3, 7));
}

#[test]
fn different_seeds_give_different_worlds() {
    assert_ne!(run(1, 42).0, run(1, 43).0);
}

#[test]
fn graph_generation_is_stable_against_itself() {
    let a = generate(&GenParams::new(300, 9));
    let b = generate(&GenParams::new(300, 9));
    let ea: Vec<_> = a.graph.edges().collect();
    let eb: Vec<_> = b.graph.edges().collect();
    assert_eq!(ea, eb);
    assert_eq!(a.ixp_members, b.ixp_members);
}
