//! Integration tests for distributed sweep dispatch over TCP workers.
//!
//! The contract: `--workers host:port,...` changes *where* a sweep is
//! computed (long-lived `repro worker` processes reached over TCP)
//! but never *what* it computes — final CSVs are byte-identical to
//! the single-process run, the worker fleet survives a SIGKILL of the
//! coordinator, and a `--resume`d coordinator re-dispatches leased
//! units to the same fleet without merging anything twice.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sbgp-net-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn csv(dir: &Path) -> Vec<u8> {
    std::fs::read(dir.join("fig9_secure_paths.csv")).expect("fig9 CSV exists")
}

/// A TCP worker child on an ephemeral port, killed on drop.
struct Worker {
    child: Child,
    addr: String,
}

impl Worker {
    fn spawn(dir: &Path, i: usize) -> Worker {
        let pf = dir.join(format!("worker-{i}.port"));
        let child = repro()
            .args(["worker", "--listen", "127.0.0.1:0", "--port-file"])
            .arg(&pf)
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("worker spawns");
        let deadline = Instant::now() + Duration::from_secs(10);
        let addr = loop {
            if let Ok(a) = std::fs::read_to_string(&pf) {
                let a = a.trim().to_string();
                if !a.is_empty() {
                    break a;
                }
            }
            assert!(
                Instant::now() < deadline,
                "worker {i} never published a port"
            );
            std::thread::sleep(Duration::from_millis(20));
        };
        Worker { child, addr }
    }

    fn alive(&mut self) -> bool {
        matches!(self.child.try_wait(), Ok(None))
    }
}

impl Drop for Worker {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

#[test]
fn tcp_workers_match_single_process_and_survive_coordinator_sigkill() {
    let reference = tmp("ref");
    let crashed = tmp("crashed");
    let o = repro()
        .args(["fig9", "--ases", "400", "--out"])
        .arg(&reference)
        .output()
        .expect("reference runs");
    assert!(o.status.success(), "reference run failed");

    let mut w0 = Worker::spawn(&crashed, 0);
    let mut w1 = Worker::spawn(&crashed, 1);
    let workers = format!("{},{}", w0.addr, w1.addr);

    // Coordinator with per-unit checkpointing, SIGKILLed once the
    // first checkpoint lands — lock, journal (with live leases), and
    // partial checkpoint are left exactly as a crash leaves them.
    let mut coord = repro()
        .args([
            "fig9",
            "--ases",
            "400",
            "--workers",
            &workers,
            "--checkpoint-every",
            "1",
            "--out",
        ])
        .arg(&crashed)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("coordinator starts");
    let ckpt = crashed.join("checkpoints").join("fig9.ckpt");
    let deadline = Instant::now() + Duration::from_secs(120);
    while !ckpt.exists() && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(ckpt.exists(), "no checkpoint appeared before the deadline");
    coord.kill().expect("kill coordinator");
    let _ = coord.wait();

    // The fleet must shrug the dead coordinator off and keep serving.
    std::thread::sleep(Duration::from_millis(200));
    assert!(w0.alive(), "worker 0 died with the coordinator");
    assert!(w1.alive(), "worker 1 died with the coordinator");

    // Resume against the same live fleet.
    let o = repro()
        .args([
            "fig9",
            "--ases",
            "400",
            "--workers",
            &workers,
            "--checkpoint-every",
            "1",
            "--resume",
            "--out",
        ])
        .arg(&crashed)
        .output()
        .expect("resume runs");
    let err = String::from_utf8_lossy(&o.stderr);
    assert!(o.status.success(), "resume failed:\n{err}");

    assert_eq!(
        csv(&reference),
        csv(&crashed),
        "CSV diverged after coordinator SIGKILL + resume:\n{err}"
    );
    // Exactly-once across the crash: the resumed dispatch only asked
    // for units the checkpoint was missing, so the merge count plus
    // the reused count covers the sweep with no unit counted twice.
    assert!(
        err.contains("[shards] merged") || err.contains("already checkpointed"),
        "resume did not go through the dispatcher:\n{err}"
    );
    // finish() compacts: journal and lock gone, checkpoint remains.
    assert!(ckpt.exists(), "checkpoint removed by finish");
    assert!(
        !crashed.join("checkpoints").join("fig9.lock").exists(),
        "stale lock survived a clean finish"
    );
    assert!(
        !crashed.join("checkpoints").join("fig9.journal").exists(),
        "journal survived a clean finish"
    );
    let _ = std::fs::remove_dir_all(&reference);
    let _ = std::fs::remove_dir_all(&crashed);
}

#[test]
fn remote_pool_degrades_to_local_shards_when_no_worker_is_reachable() {
    let single = tmp("degrade-ref");
    let degraded = tmp("degrade-run");
    let o = repro()
        .args(["fig9", "--ases", "150", "--out"])
        .arg(&single)
        .output()
        .expect("reference runs");
    assert!(o.status.success(), "reference run failed");

    // Nothing listens on these ports; every dial fails and the pool
    // must fall back to local process shards rather than abort.
    let o = repro()
        .args([
            "fig9",
            "--ases",
            "150",
            "--workers",
            "127.0.0.1:9,127.0.0.1:10",
            "--out",
        ])
        .arg(&degraded)
        .output()
        .expect("degraded run executes");
    let err = String::from_utf8_lossy(&o.stderr);
    assert!(o.status.success(), "degraded run failed:\n{err}");
    assert!(
        err.contains("local fallback spawn"),
        "pool never degraded to local shards:\n{err}"
    );
    assert_eq!(
        csv(&single),
        csv(&degraded),
        "CSV diverged under graceful degradation:\n{err}"
    );
    let _ = std::fs::remove_dir_all(&single);
    let _ = std::fs::remove_dir_all(&degraded);
}
