//! Integration tests for `repro serve`: admission control, poisoned-job
//! quarantine, result caching, and graceful SIGTERM drain — driven over
//! the real HTTP surface with a minimal hand-rolled client.
//!
//! The contract under test: a job served by the daemon produces bytes
//! identical to the one-shot CLI run; a job that panics twice is parked
//! with a replayable artifact while other jobs keep completing; pushing
//! past the queue bound yields a typed `429` with a `retry-after` hint
//! while `/healthz` stays responsive; and SIGTERM drains to exit 0 and
//! removes the port file.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sbgp-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// One blocking HTTP/1.1 exchange. The daemon always answers
/// `Connection: close`, so reading to EOF delimits the response.
fn http(addr: &str, method: &str, path: &str, body: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to daemon");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("set read timeout");
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).expect("write request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8_lossy(&raw).into_owned();
    let (head, payload) = text
        .split_once("\r\n\r\n")
        .expect("response has a header/body split");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line has a numeric code");
    (status, head.to_string(), payload.to_string())
}

/// Pull a `"key":"value"` or `"key":123` field out of a flat JSON body.
fn field(body: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":");
    let start = body.find(&needle)? + needle.len();
    let rest = &body[start..];
    if let Some(inner) = rest.strip_prefix('"') {
        inner.split('"').next().map(str::to_string)
    } else {
        rest.split(&[',', '}'][..])
            .next()
            .map(|s| s.trim().to_string())
    }
}

struct Daemon {
    child: Child,
    addr: String,
    port_file: PathBuf,
}

impl Daemon {
    fn spawn(dir: &Path, extra: &[&str]) -> Daemon {
        let pf = dir.join("serve.port");
        let mut cmd = repro();
        cmd.args(["serve", "--listen", "127.0.0.1:0", "--port-file"])
            .arg(&pf)
            .arg("--out")
            .arg(dir)
            .args(extra)
            .stdout(Stdio::null())
            .stderr(Stdio::null());
        let child = cmd.spawn().expect("daemon spawns");
        let deadline = Instant::now() + Duration::from_secs(15);
        let addr = loop {
            if let Ok(a) = std::fs::read_to_string(&pf) {
                let a = a.trim().to_string();
                if !a.is_empty() {
                    break a;
                }
            }
            assert!(Instant::now() < deadline, "daemon never published a port");
            std::thread::sleep(Duration::from_millis(20));
        };
        Daemon {
            child,
            addr,
            port_file: pf,
        }
    }

    /// `kill -TERM`, then insist on a clean exit 0 within the deadline.
    fn sigterm_and_wait(mut self) {
        let pid = self.child.id().to_string();
        let ok = Command::new("kill")
            .args(["-TERM", &pid])
            .status()
            .expect("kill runs")
            .success();
        assert!(ok, "kill -TERM failed");
        let deadline = Instant::now() + Duration::from_secs(120);
        loop {
            match self.child.try_wait().expect("try_wait") {
                Some(status) => {
                    assert!(status.success(), "drain did not exit 0: {status:?}");
                    break;
                }
                None => {
                    assert!(Instant::now() < deadline, "daemon never drained");
                    std::thread::sleep(Duration::from_millis(50));
                }
            }
        }
        assert!(
            !self.port_file.exists(),
            "port file survived a graceful drain"
        );
        // Disarm the Drop kill: the child is already reaped.
        self.child = Command::new("true").spawn().expect("spawn true");
        let _ = self.child.wait();
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

const CONFIG: &str = "ases = 300\\nseed = 7\\n";

fn submit(addr: &str, cmd: &str, config: &str) -> (u16, String, String) {
    let body = format!("{{\"cmd\":\"{cmd}\",\"config\":\"{config}\",\"client\":\"itest\"}}");
    http(addr, "POST", "/jobs", &body)
}

#[test]
fn serve_quarantines_poison_serves_results_and_drains_on_sigterm() {
    // One-shot twin: the daemon must serve byte-identical CSV bytes.
    let reference = tmp("ref");
    let o = repro()
        .args(["fig9", "--ases", "300", "--seed", "7", "--out"])
        .arg(&reference)
        .output()
        .expect("reference runs");
    assert!(o.status.success(), "reference run failed");
    let want = std::fs::read(reference.join("fig9_secure_paths.csv")).expect("reference CSV");

    let dir = tmp("daemon");
    let d = Daemon::spawn(&dir, &["--queue-bound", "2"]);

    // A deterministic panicker: two strikes, then quarantine.
    let (st, _, body) = submit(&d.addr, "__poison", CONFIG);
    assert_eq!(st, 202, "poison admission: {body}");
    let poison_id = field(&body, "id").expect("poison id");

    // A real job right behind it must still complete.
    let (st, _, body) = submit(&d.addr, "fig9", CONFIG);
    assert_eq!(st, 202, "fig9 admission: {body}");
    let fig9_id = field(&body, "id").expect("fig9 id");

    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        let (st, _, body) = http(&d.addr, "GET", &format!("/jobs/{fig9_id}"), "");
        assert_eq!(st, 200, "status poll: {body}");
        let phase = field(&body, "status").expect("status field");
        assert_ne!(phase, "parked", "fig9 was quarantined: {body}");
        if phase == "done" {
            break;
        }
        assert!(Instant::now() < deadline, "fig9 never finished");
        std::thread::sleep(Duration::from_millis(100));
    }
    let (st, _, served) = http(&d.addr, "GET", &format!("/jobs/{fig9_id}/result"), "");
    assert_eq!(st, 200, "result fetch: {served}");
    assert_eq!(
        served.as_bytes(),
        &want[..],
        "served CSV diverged from the one-shot CLI run"
    );

    // Idempotent resubmission: same canonical config → cached bytes.
    let (st, _, body) = submit(&d.addr, "fig9", CONFIG);
    assert_eq!(st, 200, "resubmission was not served from cache: {body}");
    assert_eq!(field(&body, "id").as_deref(), Some(fig9_id.as_str()));
    assert_eq!(field(&body, "cached").as_deref(), Some("true"));

    // The poison job must land in quarantine with a replayable artifact.
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (_, _, body) = http(&d.addr, "GET", &format!("/jobs/{poison_id}"), "");
        if field(&body, "status").as_deref() == Some("parked") {
            break;
        }
        assert!(Instant::now() < deadline, "poison job never parked: {body}");
        std::thread::sleep(Duration::from_millis(100));
    }
    let (st, _, body) = http(&d.addr, "GET", &format!("/jobs/{poison_id}/result"), "");
    assert_eq!(st, 409, "parked result must be a typed conflict: {body}");
    let artifact = dir
        .join("serve")
        .join("parked")
        .join(format!("{poison_id}.job"));
    let text = std::fs::read_to_string(&artifact).expect("parked artifact exists");
    assert!(text.contains("# replay:"), "artifact lacks replay line");
    assert!(text.contains("# cmd: __poison"), "artifact lacks cmd line");

    // Resubmitting a parked job reports the quarantine, not a re-run.
    let (st, _, body) = submit(&d.addr, "__poison", CONFIG);
    assert_eq!(st, 409, "parked resubmission must conflict: {body}");

    // Overload: distinct configs past the queue bound must draw a typed
    // 429 with a retry-after hint, and /healthz must stay responsive.
    let mut overloaded = false;
    for i in 0..8 {
        let cfg = format!("ases = 300\\nseed = {}\\n", 100 + i);
        let (st, head, body) = submit(&d.addr, "fig9", &cfg);
        if st == 429 {
            assert!(
                head.to_ascii_lowercase().contains("retry-after:"),
                "429 without retry-after hint: {head}"
            );
            assert!(body.contains("overloaded"), "untyped 429: {body}");
            overloaded = true;
            break;
        }
        assert_eq!(st, 202, "filler admission: {body}");
    }
    assert!(overloaded, "queue bound 2 never produced a 429");
    let (st, _, body) = http(&d.addr, "GET", "/healthz", "");
    assert_eq!(st, 200, "healthz under overload: {body}");
    assert!(body.contains("\"ok\":true"));

    // Graceful drain: exit 0, port file gone, journal retained on disk
    // for the next start.
    d.sigterm_and_wait();
    assert!(
        dir.join("serve").join("jobs.joblog").exists(),
        "journal vanished at drain"
    );
    let _ = std::fs::remove_dir_all(&reference);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn worker_drains_gracefully_on_sigterm() {
    let dir = tmp("worker");
    let pf = dir.join("worker.port");
    let mut child = repro()
        .args(["worker", "--listen", "127.0.0.1:0", "--port-file"])
        .arg(&pf)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("worker spawns");
    let deadline = Instant::now() + Duration::from_secs(10);
    while !pf.exists() {
        assert!(Instant::now() < deadline, "worker never published a port");
        std::thread::sleep(Duration::from_millis(20));
    }
    let ok = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("kill runs")
        .success();
    assert!(ok, "kill -TERM failed");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match child.try_wait().expect("try_wait") {
            Some(status) => {
                assert!(status.success(), "worker drain did not exit 0: {status:?}");
                break;
            }
            None => {
                assert!(Instant::now() < deadline, "worker never exited on SIGTERM");
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
    assert!(!pf.exists(), "worker port file survived a graceful drain");
    let _ = std::fs::remove_dir_all(&dir);
}
