//! End-to-end integration: generator → routing → deployment game →
//! metrics, asserting the paper-shaped invariants the evaluation
//! depends on.

use sbgp_asgraph::gen::{generate, GenParams};
use sbgp_asgraph::{AsClass, Weights};
use sbgp_core::{metrics, EarlyAdopters, Outcome, SimConfig, Simulation, UtilityModel};
use sbgp_routing::census::TiebreakCensus;
use sbgp_routing::{HashTieBreak, TreePolicy};

fn world(n: usize, seed: u64) -> (sbgp_asgraph::AsGraph, Weights) {
    let g = generate(&GenParams::new(n, seed)).graph;
    let w = Weights::with_cp_fraction(&g, 0.10);
    (g, w)
}

#[test]
fn case_study_reaches_high_adoption_at_low_theta() {
    let (g, w) = world(600, 42);
    let cfg = SimConfig {
        theta: 0.05,
        ..SimConfig::default()
    };
    let adopters = EarlyAdopters::ContentProvidersPlusTopIsps(5).select(&g);
    let res = Simulation::new(&g, &w, &HashTieBreak, cfg).run(&adopters);
    assert!(matches!(res.outcome, Outcome::Stable { .. }));
    // Section 5: the vast majority transitions, but never 100%.
    let ases = res.secure_as_fraction(&g);
    let isps = res.secure_isp_fraction(&g);
    assert!(ases > 0.6, "AS adoption too low: {ases}");
    assert!(ases < 1.0, "adoption should never reach 100%");
    assert!(isps > 0.5, "ISP adoption too low: {isps}");
}

#[test]
fn high_theta_leaves_deployment_simplex_driven() {
    let (g, w) = world(600, 42);
    let cfg = SimConfig {
        theta: 0.5,
        ..SimConfig::default()
    };
    let adopters = EarlyAdopters::TopIspsByDegree(5).select(&g);
    let res = Simulation::new(&g, &w, &HashTieBreak, cfg).run(&adopters);
    // Section 6.5: at θ = 50% almost no ISP deploys from market
    // pressure; secure ASes are mostly simplex stubs.
    let isps_beyond_seed = g
        .isps()
        .filter(|&n| res.final_state.get(n) && !adopters.contains(&n))
        .count();
    assert!(
        isps_beyond_seed <= g.isps().count() / 10,
        "{isps_beyond_seed} ISPs deployed at theta=0.5"
    );
    let stubs = g.stubs().filter(|&s| res.final_state.get(s)).count();
    let secure_total = res.final_state.count();
    assert!(
        stubs as f64 > 0.8 * secure_total as f64,
        "secure set should be stub-dominated: {stubs}/{secure_total}"
    );
}

#[test]
fn adoption_monotone_in_theta_roughly() {
    // More expensive deployment can only shrink (or keep) adoption.
    // (Myopic dynamics aren't strictly monotone, so allow 5% slack.)
    let (g, w) = world(400, 11);
    let adopters = EarlyAdopters::TopIspsByDegree(5).select(&g);
    let mut prev = f64::INFINITY;
    for theta in [0.0, 0.05, 0.2, 0.5] {
        let cfg = SimConfig {
            theta,
            ..SimConfig::default()
        };
        let res = Simulation::new(&g, &w, &HashTieBreak, cfg).run(&adopters);
        let f = res.secure_as_fraction(&g);
        assert!(
            f <= prev + 0.05,
            "adoption rose with theta: {f} after {prev} at theta={theta}"
        );
        prev = f;
    }
}

#[test]
fn secure_paths_track_f_squared() {
    let (g, w) = world(500, 3);
    let cfg = SimConfig {
        theta: 0.05,
        ..SimConfig::default()
    };
    let adopters = EarlyAdopters::ContentProvidersPlusTopIsps(5).select(&g);
    let res = Simulation::new(&g, &w, &HashTieBreak, cfg).run(&adopters);
    let f = res.secure_as_fraction(&g);
    let frac =
        metrics::secure_path_fraction(&g, &res.final_state, TreePolicy::default(), &HashTieBreak);
    // Figure 9: slightly below f², never above by more than noise.
    assert!(frac <= f * f + 0.01, "secure paths {frac} vs f² {}", f * f);
    assert!(
        frac >= f * f * 0.7,
        "secure paths {frac} far below f² {}",
        f * f
    );
}

#[test]
fn tiebreak_census_in_paper_regime() {
    let (g, _) = world(800, 21);
    let census = TiebreakCensus::run(&g, g.nodes(), &HashTieBreak);
    assert!(
        (1.05..=1.5).contains(&census.mean()),
        "mean {}",
        census.mean()
    );
    assert!(census.mean_for(AsClass::Isp) > census.mean_for(AsClass::Stub));
    assert!((0.10..=0.35).contains(&census.multi_fraction()));
    assert!(census.security_sensitive_fraction() < 0.10);
}

#[test]
fn holdouts_are_low_degree_isps() {
    // Section 5.3: ISPs that never deploy are the ones without
    // competition — low degree, single-homed stub customers.
    let (g, w) = world(600, 42);
    let cfg = SimConfig {
        theta: 0.05,
        ..SimConfig::default()
    };
    let adopters = EarlyAdopters::ContentProvidersPlusTopIsps(5).select(&g);
    let res = Simulation::new(&g, &w, &HashTieBreak, cfg).run(&adopters);
    let holdouts: Vec<_> = g.isps().filter(|&n| !res.final_state.get(n)).collect();
    assert!(!holdouts.is_empty(), "some ISPs must remain insecure");
    let mean_holdout =
        holdouts.iter().map(|&n| g.degree(n)).sum::<usize>() as f64 / holdouts.len() as f64;
    let mean_all = g.isps().map(|n| g.degree(n)).sum::<usize>() as f64 / g.isps().count() as f64;
    assert!(
        mean_holdout < mean_all,
        "holdout mean degree {mean_holdout} vs population {mean_all}"
    );
}

#[test]
fn stub_tiebreaking_barely_matters() {
    // Section 6.7: results are insensitive to whether stubs apply SecP.
    let (g, w) = world(500, 8);
    let adopters = EarlyAdopters::TopIspsByDegree(5).select(&g);
    for theta in [0.05, 0.2] {
        let run = |stubs_prefer_secure| {
            let cfg = SimConfig {
                theta,
                tree_policy: TreePolicy {
                    stubs_prefer_secure,
                },
                ..SimConfig::default()
            };
            Simulation::new(&g, &w, &HashTieBreak, cfg)
                .run(&adopters)
                .secure_as_fraction(&g)
        };
        let with = run(true);
        let without = run(false);
        assert!(
            (with - without).abs() < 0.15,
            "theta={theta}: stubs-prefer {with} vs ignore {without}"
        );
    }
}

#[test]
fn incoming_model_case_study_terminates_or_cycles() {
    // The incoming model has no termination guarantee; the driver must
    // classify the outcome rather than loop forever.
    let (g, w) = world(400, 5);
    let cfg = SimConfig {
        theta: 0.05,
        model: UtilityModel::Incoming,
        max_rounds: 60,
        ..SimConfig::default()
    };
    let adopters = EarlyAdopters::TopIspsByDegree(5).select(&g);
    let res = Simulation::new(&g, &w, &HashTieBreak, cfg).run(&adopters);
    match res.outcome {
        Outcome::Stable { .. } | Outcome::Oscillation { .. } | Outcome::MaxRounds => {}
    }
    assert!(res.rounds.len() <= 60);
}

#[test]
fn golden_figures_match_committed_snapshots_byte_for_byte() {
    // Regression net for the whole harness: `repro fig3/fig5/fig8` at
    // a small fixed seed must reproduce the committed CSVs under
    // tests/fixtures/golden/ *byte-for-byte*. Any engine change that
    // silently alters results — a reordered f64 sum, a tiebreak drift,
    // a delta-projection inexactness — fails here in tier-1.
    //
    // To regenerate after an intentional change:
    //   repro figN --ases 150 --seed 42 --out tests/fixtures/golden
    let bin = env!("CARGO_BIN_EXE_repro");
    let golden =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures/golden");
    let out = std::env::temp_dir().join(format!("sbgp-golden-{}", std::process::id()));
    std::fs::create_dir_all(&out).unwrap();
    for (cmd, files) in [
        ("fig3", &["fig3_rounds.csv"][..]),
        ("fig5", &["fig5_projected.csv"][..]),
        ("fig8", &["fig8a_ases.csv", "fig8b_isps.csv"][..]),
    ] {
        let status = std::process::Command::new(bin)
            .args([cmd, "--ases", "150", "--seed", "42", "--out"])
            .arg(&out)
            .stdout(std::process::Stdio::null())
            .status()
            .unwrap();
        assert!(status.success(), "repro {cmd} failed");
        for f in files {
            let want = std::fs::read(golden.join(f))
                .unwrap_or_else(|e| panic!("missing golden fixture {f}: {e}"));
            let got = std::fs::read(out.join(f))
                .unwrap_or_else(|e| panic!("repro {cmd} produced no {f}: {e}"));
            assert!(
                want == got,
                "{f} diverges from the golden snapshot\n--- golden ---\n{}\n--- got ---\n{}",
                String::from_utf8_lossy(&want),
                String::from_utf8_lossy(&got),
            );
        }
    }
    let _ = std::fs::remove_dir_all(&out);
}

#[test]
fn golden_scenario_surface_matches_and_is_thread_count_independent() {
    // The adversarial scenario surface is pinned the same way as the
    // figures: `repro scenario` at the fixed small seed must reproduce
    // the committed CSVs byte-for-byte — and must keep doing so at
    // every thread count, which turns the engine's determinism
    // discipline (fixed job index space, pre-decided audit set,
    // index-ordered aggregation) into a tier-1 gate.
    //
    // To regenerate after an intentional change:
    //   repro scenario --ases 150 --seed 42 --pairs 12 \
    //     --attacks hijack,downgrade --policies sec3,sec3+rov \
    //     --out tests/fixtures/golden
    let bin = env!("CARGO_BIN_EXE_repro");
    let golden =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures/golden");
    let files = ["scenario_surface.csv", "scenario_deltas.csv"];
    for threads in ["1", "2", "4", "8"] {
        let out = std::env::temp_dir().join(format!(
            "sbgp-scenario-golden-{}-{threads}",
            std::process::id()
        ));
        std::fs::create_dir_all(&out).unwrap();
        let status = std::process::Command::new(bin)
            .args([
                "scenario",
                "--ases",
                "150",
                "--seed",
                "42",
                "--pairs",
                "12",
                "--attacks",
                "hijack,downgrade",
                "--policies",
                "sec3,sec3+rov",
                "--threads",
                threads,
                "--out",
            ])
            .arg(&out)
            .stdout(std::process::Stdio::null())
            .status()
            .unwrap();
        assert!(
            status.success(),
            "repro scenario failed at {threads} threads"
        );
        for f in files {
            let want = std::fs::read(golden.join(f))
                .unwrap_or_else(|e| panic!("missing golden fixture {f}: {e}"));
            let got = std::fs::read(out.join(f))
                .unwrap_or_else(|e| panic!("repro scenario produced no {f}: {e}"));
            assert!(
                want == got,
                "{f} diverges from the golden snapshot at {threads} threads\n\
                 --- golden ---\n{}\n--- got ---\n{}",
                String::from_utf8_lossy(&want),
                String::from_utf8_lossy(&got),
            );
        }
        let _ = std::fs::remove_dir_all(&out);
    }
}

#[test]
fn augmentation_empowers_cps() {
    // Section 6.8 / Figure 12: CP early adopters are ineffective on
    // the base graph but competitive on the augmented one.
    let generated = generate(&GenParams::new(600, 42));
    let base = &generated.graph;
    let aug =
        sbgp_asgraph::augment::augment_cp_peering(base, &generated.ixp_members, 0.8, 9).unwrap();
    let cfg = SimConfig {
        theta: 0.05,
        ..SimConfig::default()
    };
    let run = |g: &sbgp_asgraph::AsGraph| {
        let w = Weights::with_cp_fraction(g, 0.33);
        let adopters = EarlyAdopters::ContentProviders.select(g);
        Simulation::new(g, &w, &HashTieBreak, cfg)
            .run(&adopters)
            .secure_as_fraction(g)
    };
    let on_base = run(base);
    let on_aug = run(&aug);
    assert!(
        on_aug > on_base + 0.3,
        "augmentation should unlock CP influence: base {on_base}, augmented {on_aug}"
    );
}
