//! CLI integration for `repro doctor`: the valid fixtures pass, every
//! file in the malformed corpus is rejected with a non-zero exit and a
//! line-numbered diagnostic.

use std::path::PathBuf;
use std::process::Command;

fn fixtures() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures")
}

fn repro(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("repro binary runs")
}

#[test]
fn doctor_accepts_the_valid_fixtures() {
    let dir = fixtures();
    let graph = dir.join("valid.graph");
    let cfg = dir.join("valid.cfg");
    let out = repro(&["doctor", graph.to_str().unwrap(), cfg.to_str().unwrap()]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "doctor failed on valid fixtures:\n{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("ok:"), "{stdout}");
    assert!(stdout.contains("graph with"), "{stdout}");
    assert!(stdout.contains("config ("), "{stdout}");
    assert!(stdout.contains("0 invalid"), "{stdout}");
}

#[test]
fn doctor_rejects_every_malformed_fixture() {
    let dir = fixtures().join("malformed");
    let entries: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("malformed corpus exists")
        .map(|e| e.unwrap().path())
        .collect();
    assert!(entries.len() >= 7, "corpus shrank: {entries:?}");
    for path in entries {
        let out = repro(&["doctor", path.to_str().unwrap()]);
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            !out.status.success(),
            "doctor accepted malformed {path:?}:\n{}",
            String::from_utf8_lossy(&out.stdout)
        );
        assert!(stderr.contains("error:"), "{path:?}: {stderr}");
        assert!(
            stderr.contains("line"),
            "diagnostic for {path:?} lacks a line number: {stderr}"
        );
    }
}

#[test]
fn doctor_walks_directories_and_counts_failures() {
    let out = repro(&["doctor", fixtures().to_str().unwrap()]);
    assert!(!out.status.success(), "corpus contains malformed files");
    let stderr = String::from_utf8_lossy(&out.stderr);
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The two valid files still validate inside the directory walk...
    assert!(stdout.contains("ok:"), "{stdout}");
    // ...and the summary counts every malformed one.
    assert!(stderr.contains("file(s) failed validation"), "{stderr}");
}

#[test]
fn doctor_without_arguments_is_an_error() {
    let out = repro(&["doctor"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}
