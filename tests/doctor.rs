//! CLI integration for `repro doctor`: the valid fixtures pass, every
//! file in the malformed corpus is rejected with a non-zero exit and a
//! line-numbered diagnostic.

use std::path::PathBuf;
use std::process::Command;

fn fixtures() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures")
}

fn repro(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("repro binary runs")
}

#[test]
fn doctor_accepts_the_valid_fixtures() {
    let dir = fixtures();
    let graph = dir.join("valid.graph");
    let cfg = dir.join("valid.cfg");
    let out = repro(&["doctor", graph.to_str().unwrap(), cfg.to_str().unwrap()]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "doctor failed on valid fixtures:\n{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("ok:"), "{stdout}");
    assert!(stdout.contains("graph with"), "{stdout}");
    assert!(stdout.contains("config ("), "{stdout}");
    assert!(stdout.contains("0 invalid"), "{stdout}");
}

#[test]
fn doctor_rejects_every_malformed_fixture() {
    let dir = fixtures().join("malformed");
    let entries: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("malformed corpus exists")
        .map(|e| e.unwrap().path())
        .collect();
    assert!(entries.len() >= 7, "corpus shrank: {entries:?}");
    for path in entries {
        let out = repro(&["doctor", path.to_str().unwrap()]);
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            !out.status.success(),
            "doctor accepted malformed {path:?}:\n{}",
            String::from_utf8_lossy(&out.stdout)
        );
        assert!(stderr.contains("error:"), "{path:?}: {stderr}");
        assert!(
            stderr.contains("line"),
            "diagnostic for {path:?} lacks a line number: {stderr}"
        );
    }
}

#[test]
fn doctor_walks_directories_and_counts_failures() {
    let out = repro(&["doctor", fixtures().to_str().unwrap()]);
    assert!(!out.status.success(), "corpus contains malformed files");
    let stderr = String::from_utf8_lossy(&out.stderr);
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The two valid files still validate inside the directory walk...
    assert!(stdout.contains("ok:"), "{stdout}");
    // ...and the summary counts every malformed one.
    assert!(stderr.contains("file(s) failed validation"), "{stderr}");
}

#[test]
fn doctor_without_arguments_is_an_error() {
    let out = repro(&["doctor"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

// ---- supervisor artifacts ------------------------------------------

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sbgp-doctor-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// A pid that is certainly dead: spawn a short-lived child and reap it.
fn dead_pid() -> u32 {
    let mut child = Command::new("true").spawn().expect("spawn true");
    let pid = child.id();
    child.wait().expect("reap");
    pid
}

/// Build a journal with one real record, then append torn garbage.
fn torn_journal(dir: &std::path::Path) -> PathBuf {
    use sbgp_asgraph::gen::{generate, GenParams};
    use sbgp_asgraph::Weights;
    use sbgp_core::checkpoint::UnitJournal;
    use sbgp_core::{EarlyAdopters, SimConfig, Simulation};
    use sbgp_routing::HashTieBreak;

    let g = generate(&GenParams::new(120, 5)).graph;
    let w = Weights::with_cp_fraction(&g, 0.10);
    let res = Simulation::new(&g, &w, &HashTieBreak, SimConfig::default())
        .run(&EarlyAdopters::ContentProviders.select(&g));
    let path = dir.join("sweep.journal");
    let mut j = UnitJournal::open(&path).expect("open journal");
    j.append("cps;theta=0.05", &res).expect("append");
    drop(j);
    let mut bytes = std::fs::read(&path).expect("read journal");
    bytes.extend_from_slice(b"rec 999 deadbeef\ntruncated mid-app");
    std::fs::write(&path, bytes).expect("write torn journal");
    path
}

#[test]
fn doctor_diagnoses_and_fixes_a_torn_journal() {
    let dir = tmp("journal");
    let path = torn_journal(&dir);
    let p = path.to_str().unwrap();

    let out = repro(&["doctor", p]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!out.status.success(), "torn journal accepted");
    assert!(stderr.contains("torn journal tail"), "{stderr}");
    assert!(stderr.contains("1 complete record(s)"), "{stderr}");
    assert!(stderr.contains("--fix"), "no salvage hint: {stderr}");

    let out = repro(&["doctor", "--fix", p]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "--fix failed: {stdout}");
    assert!(stdout.contains("fixed: torn journal"), "{stdout}");

    // After salvage the journal is clean and keeps its one record.
    let out = repro(&["doctor", p]);
    assert!(out.status.success(), "salvaged journal still rejected");
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("1 complete record(s)"),
        "salvage lost the valid record"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn doctor_diagnoses_and_fixes_a_stale_sweep_lock() {
    let dir = tmp("lock");
    let path = dir.join("fig9.lock");
    std::fs::write(&path, format!("pid {}\n", dead_pid())).unwrap();
    let p = path.to_str().unwrap();

    let out = repro(&["doctor", p]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!out.status.success(), "stale lock accepted");
    assert!(stderr.contains("stale sweep lock"), "{stderr}");

    let out = repro(&["doctor", "--fix", p]);
    assert!(out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("removed stale sweep lock"),
        "fix not reported"
    );
    assert!(!path.exists(), "--fix left the stale lock behind");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn doctor_accepts_a_lock_held_by_a_live_process() {
    let dir = tmp("livelock");
    let path = dir.join("fig9.lock");
    std::fs::write(&path, format!("pid {}\n", std::process::id())).unwrap();
    let out = repro(&["doctor", path.to_str().unwrap()]);
    assert!(out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("held by live process"),
        "live lock not recognized"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn doctor_rejects_a_malformed_lock_with_a_line_number() {
    let dir = tmp("badlock");
    let path = dir.join("fig9.lock");
    std::fs::write(&path, "owner: me\n").unwrap();
    let out = repro(&["doctor", path.to_str().unwrap()]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!out.status.success());
    assert!(stderr.contains("line 1"), "{stderr}");
    assert!(stderr.contains("pid"), "{stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn doctor_diagnoses_and_fixes_a_dead_worker_scratch_dir() {
    let dir = tmp("scratch");
    let scratch = dir.join(format!("__shard-worker-{}", dead_pid()));
    std::fs::create_dir_all(&scratch).unwrap();
    std::fs::write(scratch.join("current"), "cps;theta=0.05").unwrap();

    // Directory walk treats the scratch dir as one unit.
    let out = repro(&["doctor", dir.to_str().unwrap()]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!out.status.success(), "dead worker scratch accepted");
    assert!(stderr.contains("leftover scratch dir"), "{stderr}");
    assert!(
        stderr.contains("cps;theta=0.05"),
        "in-flight unit not named: {stderr}"
    );

    let out = repro(&["doctor", "--fix", dir.to_str().unwrap()]);
    assert!(out.status.success());
    assert!(!scratch.exists(), "--fix left the scratch dir behind");
    let _ = std::fs::remove_dir_all(&dir);
}
