//! Exactness edge cases for the C.4-3 delta-projection kernel.
//!
//! Each case is a structural corner where an "obvious" subtree-repair
//! implementation goes wrong, pinned by exact `==` against the full
//! recompute (`--delta-projections off`):
//!
//! * the candidate is the destination's **sole provider**, so its flip
//!   changes the security of the destination's entire tree at once;
//! * the candidate sits inside a `--fail-links` degraded region, where
//!   parts of the graph are unreachable and the repair frontier must
//!   not wander into them;
//! * turning on auto-deploys **simplex S\*BGP at insecure stub
//!   customers** (Section 2.3), making the flip a multi-node event;
//! * a **turn-off** candidate in the incoming model, on the Figure 13
//!   buyer's-remorse topology whose whole point is that removing
//!   security moves heavy traffic.

use sbgp_asgraph::fault::{apply_faults, FaultPlan};
use sbgp_asgraph::gen::{generate, GenParams};
use sbgp_asgraph::{AsGraph, AsGraphBuilder, AsId, Weights};
use sbgp_core::{
    initial_state, DeltaMode, EngineStats, SimConfig, Simulation, UtilityEngine, UtilityModel,
};
use sbgp_routing::{HashTieBreak, LowestAsnTieBreak, SecureSet, TieBreaker};

/// Compute one round with the given mode and return it with stats.
fn round(
    g: &AsGraph,
    w: &Weights,
    tb: &dyn TieBreaker,
    cfg: SimConfig,
    state: &SecureSet,
    candidates: &[AsId],
) -> (sbgp_core::RoundComputation, EngineStats) {
    let engine = UtilityEngine::new(g, w, tb, cfg);
    let comp = engine.compute(state, candidates);
    (comp, engine.stats())
}

/// Assert delta (`On`) and full (`Off`) rounds agree bit-for-bit and
/// that the delta path actually fired.
fn assert_bit_identical(
    g: &AsGraph,
    w: &Weights,
    tb: &dyn TieBreaker,
    cfg: SimConfig,
    state: &SecureSet,
    candidates: &[AsId],
    what: &str,
) {
    let (full, _) = round(
        g,
        w,
        tb,
        SimConfig {
            delta_projections: DeltaMode::Off,
            ..cfg
        },
        state,
        candidates,
    );
    let (delta, stats) = round(
        g,
        w,
        tb,
        SimConfig {
            delta_projections: DeltaMode::On,
            ..cfg
        },
        state,
        candidates,
    );
    assert!(stats.delta_hits > 0, "{what}: delta path never fired");
    assert_eq!(full.base_out, delta.base_out, "{what}: base_out");
    assert_eq!(full.base_in, delta.base_in, "{what}: base_in");
    assert_eq!(full.proj_out, delta.proj_out, "{what}: proj_out");
    assert_eq!(full.proj_in, delta.proj_in, "{what}: proj_in");
}

#[test]
fn sole_provider_of_destination() {
    // t over {a, b}; a is the *only* provider of stub d. Flipping a
    // secures (or not) every route into d — the repair covers the
    // whole tree even though only one AS flipped.
    let mut b = AsGraphBuilder::new();
    let t = b.add_node(100);
    let a = b.add_node(10);
    let bb = b.add_node(20);
    let d = b.add_node(30);
    let e = b.add_node(40);
    b.add_provider_customer(t, a).unwrap();
    b.add_provider_customer(t, bb).unwrap();
    b.add_provider_customer(a, d).unwrap();
    b.add_provider_customer(bb, e).unwrap();
    let g = b.build().unwrap();
    let w = Weights::uniform(&g);
    let state = initial_state(&g, &[t]);
    let cfg = SimConfig::default();
    assert_bit_identical(
        &g,
        &w,
        &LowestAsnTieBreak,
        cfg,
        &state,
        &[a, bb],
        "sole-provider",
    );
}

#[test]
fn candidate_inside_failed_link_region() {
    // Degrade a generated topology with seeded link failures, then
    // project every remaining insecure ISP. Unreachable nodes carry
    // UNREACH route lengths; the frontier must skip them, and the
    // delta must still match the full recompute bit-for-bit.
    let base = generate(&GenParams::new(200, 11)).graph;
    let plan = FaultPlan::links(0.15, 0xfa11);
    let (g, report) = apply_faults(&base, &plan).unwrap();
    assert!(
        report.surviving_edges < report.total_edges,
        "the fault plan must actually remove links"
    );
    let w = Weights::with_cp_fraction(&g, 0.10);
    let adopters: Vec<AsId> =
        sbgp_asgraph::stats::top_k_by_degree(&g, sbgp_asgraph::AsClass::Isp, 3);
    let state = initial_state(&g, &adopters);
    let candidates: Vec<AsId> = g.isps().filter(|&n| !state.get(n)).collect();
    let cfg = SimConfig::default();
    assert_bit_identical(
        &g,
        &w,
        &HashTieBreak,
        cfg,
        &state,
        &candidates,
        "fail-links",
    );
}

#[test]
fn simplex_stub_auto_deploy_is_a_multi_flip() {
    // An ISP with many insecure stub customers: turning it on flips
    // the ISP *and* every stub at once (Section 2.3). The delta must
    // seed its repair from all of them, not just the candidate.
    let mut b = AsGraphBuilder::new();
    let t = b.add_node(100);
    let isp = b.add_node(10);
    let rival = b.add_node(20);
    b.add_provider_customer(t, isp).unwrap();
    b.add_provider_customer(t, rival).unwrap();
    let mut stubs = Vec::new();
    for k in 0..6 {
        let s = b.add_node(1000 + k);
        b.add_provider_customer(isp, s).unwrap();
        stubs.push(s);
    }
    // One multihomed stub kept insecure via the rival as well.
    let m = b.add_node(2000);
    b.add_provider_customer(isp, m).unwrap();
    b.add_provider_customer(rival, m).unwrap();
    let g = b.build().unwrap();
    let w = Weights::uniform(&g);
    let state = initial_state(&g, &[t]);
    let cfg = SimConfig::default();
    assert_bit_identical(
        &g,
        &w,
        &LowestAsnTieBreak,
        cfg,
        &state,
        &[isp, rival],
        "simplex-stubs",
    );
}

#[test]
fn figure13_turn_off_candidates_in_incoming_model() {
    // The Section 7.1 buyer's-remorse gadget: AS 4755 profits from
    // turning S*BGP *off*. Run the whole constrained simulation under
    // both modes — outcome, per-round records, and final state must
    // match exactly, and the telecom must still disable.
    let (world, f) = sbgp_gadgets::turnoff::build(24, 50);
    let w = Weights::uniform(&world.graph);
    let run = |mode: DeltaMode| {
        let cfg = SimConfig {
            theta: 0.05,
            model: UtilityModel::Incoming,
            delta_projections: mode,
            ..SimConfig::default()
        };
        Simulation::new(&world.graph, &w, &LowestAsnTieBreak, cfg).run_constrained(
            world.initial.clone(),
            &world.movable,
            vec![],
        )
    };
    let full = run(DeltaMode::Off);
    let delta = run(DeltaMode::On);
    assert!(
        !delta.final_state.get(f.telecom),
        "AS 4755 must still turn off under the delta path"
    );
    assert_eq!(delta.final_state, full.final_state, "final states diverge");
    assert_eq!(
        delta.rounds.len(),
        full.rounds.len(),
        "round counts diverge"
    );
    for (a, b) in delta.rounds.iter().zip(&full.rounds) {
        assert_eq!(a.turned_on, b.turned_on, "per-round turn-ons diverge");
        assert_eq!(a.turned_off, b.turned_off, "per-round turn-offs diverge");
        assert_eq!(
            a.projected, b.projected,
            "per-round projected utilities diverge"
        );
    }
    assert!(
        delta.stats.delta_hits > 0,
        "turn-off projections must exercise the delta path"
    );
}
