//! Empirical checks of the paper's theorems against the real engine,
//! over randomized graphs and states.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sbgp_asgraph::gen::{generate, GenParams};
use sbgp_asgraph::{AsGraph, AsId, Weights};
use sbgp_core::{
    initial_state, metrics, EarlyAdopters, Outcome, SimConfig, Simulation, UtilityEngine,
    UtilityModel,
};
use sbgp_routing::{HashTieBreak, SecureSet};

fn random_state(g: &AsGraph, density: f64, rng: &mut StdRng) -> SecureSet {
    let mut s = SecureSet::new(g.len());
    for n in g.nodes() {
        if rng.gen_bool(density) {
            s.set(n, true);
        }
    }
    s
}

/// Theorem 6.2: in the outgoing model, a secure node never gains by
/// turning off — its projected (turned-off) utility is never higher.
#[test]
fn thm_6_2_no_turn_off_incentive_in_outgoing_model() {
    let mut rng = StdRng::seed_from_u64(0xdead);
    for seed in 0..3u64 {
        let g = generate(&GenParams::new(200, seed)).graph;
        let w = Weights::with_cp_fraction(&g, 0.10);
        let cfg = SimConfig::default();
        let engine = UtilityEngine::new(&g, &w, &HashTieBreak, cfg);
        for density in [0.2, 0.6] {
            let state = random_state(&g, density, &mut rng);
            let secure_isps: Vec<AsId> = g.isps().filter(|&n| state.get(n)).collect();
            let comp = engine.compute(&state, &secure_isps);
            for &n in &secure_isps {
                let u = comp.base(UtilityModel::Outgoing, n);
                let off = comp.projected(UtilityModel::Outgoing, n);
                assert!(
                    off <= u + 1e-9,
                    "Theorem 6.2 violated at {n} (seed {seed}, density {density}): \
                     u={u}, off={off}"
                );
            }
        }
    }
}

/// Theorem 6.2 corollary: outgoing-model simulations always terminate
/// in a stable state (never oscillate).
#[test]
fn outgoing_model_always_stabilizes() {
    for seed in 0..4u64 {
        let g = generate(&GenParams::new(250, seed)).graph;
        let w = Weights::with_cp_fraction(&g, 0.10);
        for theta in [0.0, 0.05, 0.3] {
            let cfg = SimConfig {
                theta,
                ..SimConfig::default()
            };
            let adopters = EarlyAdopters::TopIspsByDegree(5).select(&g);
            let res = Simulation::new(&g, &w, &HashTieBreak, cfg).run(&adopters);
            assert!(
                matches!(res.outcome, Outcome::Stable { .. }),
                "seed {seed} theta {theta}: {:?}",
                res.outcome
            );
        }
    }
}

/// Secure ISPs stay secure in the outgoing model — deployment is
/// monotone round over round.
#[test]
fn outgoing_deployment_is_monotone() {
    let g = generate(&GenParams::new(300, 77)).graph;
    let w = Weights::with_cp_fraction(&g, 0.10);
    let cfg = SimConfig {
        theta: 0.05,
        ..SimConfig::default()
    };
    let adopters = EarlyAdopters::ContentProvidersPlusTopIsps(5).select(&g);
    let res = Simulation::new(&g, &w, &HashTieBreak, cfg).run(&adopters);
    for r in &res.rounds {
        assert!(r.turned_off.is_empty(), "turn-off in outgoing model");
    }
    let states = metrics::states_by_round(&res);
    for w2 in states.windows(2) {
        for n in g.nodes() {
            assert!(
                !w2[0].get(n) || w2[1].get(n),
                "node {n} lost security between rounds"
            );
        }
    }
    assert_eq!(states.last().unwrap(), &res.final_state);
}

/// A reported stable state really is stable: re-evaluating every ISP
/// in the final state finds no one who wants to move.
#[test]
fn stable_outcome_is_a_fixed_point() {
    let g = generate(&GenParams::new(300, 5)).graph;
    let w = Weights::with_cp_fraction(&g, 0.10);
    let cfg = SimConfig {
        theta: 0.05,
        ..SimConfig::default()
    };
    let adopters = EarlyAdopters::TopIspsByDegree(5).select(&g);
    let res = Simulation::new(&g, &w, &HashTieBreak, cfg).run(&adopters);
    assert!(matches!(res.outcome, Outcome::Stable { .. }));
    let engine = UtilityEngine::new(&g, &w, &HashTieBreak, cfg);
    let candidates: Vec<AsId> = g.isps().filter(|&n| !res.final_state.get(n)).collect();
    let comp = engine.compute(&res.final_state, &candidates);
    for &n in &candidates {
        let u = comp.base(UtilityModel::Outgoing, n);
        let proj = comp.projected(UtilityModel::Outgoing, n);
        assert!(
            proj <= (1.0 + cfg.theta) * u + 1e-6,
            "ISP {n} still wants to deploy in the 'stable' state"
        );
    }
}

/// Simplex invariant: in any reachable state, every stub customer of
/// a secure ISP is secure.
#[test]
fn simplex_invariant_holds_every_round() {
    let g = generate(&GenParams::new(300, 13)).graph;
    let w = Weights::with_cp_fraction(&g, 0.10);
    let cfg = SimConfig {
        theta: 0.05,
        ..SimConfig::default()
    };
    let adopters = EarlyAdopters::ContentProvidersPlusTopIsps(5).select(&g);
    let res = Simulation::new(&g, &w, &HashTieBreak, cfg).run(&adopters);
    for state in metrics::states_by_round(&res) {
        for isp in g.isps().filter(|&n| state.get(n)) {
            for stub in g.stub_customers_of(isp) {
                assert!(
                    state.get(stub),
                    "stub {stub} of secure ISP {isp} is not simplex-secured"
                );
            }
        }
    }
}

/// CPs never deploy unless seeded (Section 3.2).
#[test]
fn cps_only_deploy_as_early_adopters() {
    let g = generate(&GenParams::new(300, 2)).graph;
    let w = Weights::with_cp_fraction(&g, 0.33);
    let cfg = SimConfig {
        theta: 0.0,
        ..SimConfig::default()
    };
    let adopters = EarlyAdopters::TopIspsByDegree(25).select(&g);
    let res = Simulation::new(&g, &w, &HashTieBreak, cfg).run(&adopters);
    for &cp in g.content_providers() {
        assert!(
            !res.final_state.get(cp),
            "CP {cp} deployed without being seeded"
        );
    }
}

/// The initial state is exactly: adopters + stubs of adopter ISPs.
#[test]
fn initial_state_matches_model() {
    let g = generate(&GenParams::new(300, 4)).graph;
    let adopters = EarlyAdopters::ContentProvidersPlusTopIsps(3).select(&g);
    let s = initial_state(&g, &adopters);
    for n in g.nodes() {
        let should = adopters.contains(&n)
            || (g.is_stub(n)
                && g.providers(n)
                    .iter()
                    .any(|p| adopters.contains(p) && g.is_isp(*p)));
        assert_eq!(s.get(n), should, "node {n}");
    }
}
