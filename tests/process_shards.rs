//! Integration tests for supervised process-sharded execution.
//!
//! The contract: `--process-shards N` changes *how* a sweep is
//! computed (child worker processes under a supervisor) but never
//! *what* it computes — final CSVs are byte-identical to the
//! single-process run at any shard count, under injected worker
//! kills, and across a SIGKILL of the supervisor itself followed by
//! `--resume`.

use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::{Duration, Instant};

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sbgp-shards-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Run `repro fig9` with the given extra flags into `out`, returning
/// (stdout, stderr) and asserting success.
fn fig9(ases: &str, out: &Path, extra: &[&str]) -> (String, String) {
    let o = repro()
        .args(["fig9", "--ases", ases, "--out"])
        .arg(out)
        .args(extra)
        .output()
        .expect("repro runs");
    assert!(
        o.status.success(),
        "repro fig9 {extra:?} failed:\n{}",
        String::from_utf8_lossy(&o.stderr)
    );
    (
        String::from_utf8_lossy(&o.stdout).into_owned(),
        String::from_utf8_lossy(&o.stderr).into_owned(),
    )
}

fn csv(dir: &Path) -> Vec<u8> {
    std::fs::read(dir.join("fig9_secure_paths.csv")).expect("fig9 CSV exists")
}

/// The `[engine]` summary lines — satellite check that worker stats
/// cross the process boundary (without propagation the gate
/// `dests_computed + dests_reused > 0` fails and no line is printed).
fn engine_lines(stdout: &str) -> Vec<&str> {
    stdout
        .lines()
        .filter(|l| l.starts_with("[engine]"))
        .collect()
}

#[test]
fn sharded_sweep_is_byte_identical_to_single_process() {
    let single = tmp("single");
    let sharded = tmp("sharded");
    let (out_single, _) = fig9("150", &single, &[]);
    let (out_sharded, err) = fig9("150", &sharded, &["--process-shards", "4"]);
    assert_eq!(csv(&single), csv(&sharded), "CSV diverged across shards");
    assert!(
        err.contains("across 4 worker process(es)"),
        "supervisor did not dispatch: {err}"
    );
    // Engine counters are sums over the same units in both modes, so
    // the summary lines must match exactly — proving the stats frames
    // carried every counter across the process boundary.
    let want = engine_lines(&out_single);
    assert!(!want.is_empty(), "no [engine] summary in single mode");
    assert_eq!(
        want,
        engine_lines(&out_sharded),
        "engine counters lost or distorted in sharded mode"
    );
    let _ = std::fs::remove_dir_all(&single);
    let _ = std::fs::remove_dir_all(&sharded);
}

#[test]
fn kill_injected_workers_still_produce_identical_output() {
    let single = tmp("chaos-ref");
    let chaotic = tmp("chaos-run");
    fig9("150", &single, &[]);
    let (_, err) = fig9(
        "150",
        &chaotic,
        &[
            "--process-shards",
            "4",
            "--kill-workers",
            "0.3",
            "--watchdog-secs",
            "10",
        ],
    );
    assert_eq!(csv(&single), csv(&chaotic), "CSV diverged under chaos");
    // The kill schedule is seeded; at rate 0.3 over this sweep at
    // least one worker is SIGKILLed mid-run and its units requeued.
    assert!(err.contains("injected kill"), "no kill fired: {err}");
    let _ = std::fs::remove_dir_all(&single);
    let _ = std::fs::remove_dir_all(&chaotic);
}

#[test]
fn worker_memory_ceiling_leaves_results_intact() {
    let single = tmp("mem-ref");
    let capped = tmp("mem-run");
    fig9("150", &single, &[]);
    // A generous ceiling: the point is that the `ulimit -v` wrapper
    // path spawns, frames, and merges exactly like the direct one.
    fig9(
        "150",
        &capped,
        &["--process-shards", "2", "--worker-mem-mb", "8192"],
    );
    assert_eq!(csv(&single), csv(&capped), "CSV diverged under rlimit");
    let _ = std::fs::remove_dir_all(&single);
    let _ = std::fs::remove_dir_all(&capped);
}

#[test]
fn supervisor_sigkill_then_resume_is_byte_identical() {
    let reference = tmp("sigkill-ref");
    let crashed = tmp("sigkill-run");
    fig9("400", &reference, &[]);

    // Start the sharded sweep with per-unit checkpointing, then
    // SIGKILL the supervisor once at least one unit has been saved.
    let mut sup = repro()
        .args([
            "fig9",
            "--ases",
            "400",
            "--process-shards",
            "4",
            "--kill-workers",
            "0.2",
            "--checkpoint-every",
            "1",
            "--out",
        ])
        .arg(&crashed)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("supervisor starts");
    let ckpt = crashed.join("checkpoints").join("fig9.ckpt");
    let deadline = Instant::now() + Duration::from_secs(120);
    while !ckpt.exists() && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(ckpt.exists(), "no checkpoint appeared before the deadline");
    // SIGKILL — no cleanup handlers run; lock and journal are left
    // behind for --resume (and `repro doctor`) to deal with.
    sup.kill().expect("kill supervisor");
    let _ = sup.wait();

    let (_, err) = fig9(
        "400",
        &crashed,
        &[
            "--process-shards",
            "4",
            "--kill-workers",
            "0.2",
            "--checkpoint-every",
            "1",
            "--resume",
        ],
    );
    assert_eq!(
        csv(&reference),
        csv(&crashed),
        "CSV diverged after supervisor SIGKILL + resume:\n{err}"
    );
    // finish() compacts: the journal and lock must be gone, only the
    // completed checkpoint remains.
    assert!(ckpt.exists(), "checkpoint removed by finish");
    assert!(
        !crashed.join("checkpoints").join("fig9.lock").exists(),
        "stale lock survived a clean finish"
    );
    assert!(
        !crashed.join("checkpoints").join("fig9.journal").exists(),
        "journal survived a clean finish"
    );
    let _ = std::fs::remove_dir_all(&reference);
    let _ = std::fs::remove_dir_all(&crashed);
}

#[test]
fn chaos_subcommand_self_checks() {
    let out = tmp("chaos-cmd");
    let o = repro()
        .args(["chaos", "--ases", "150", "--out"])
        .arg(&out)
        .output()
        .expect("repro chaos runs");
    let stdout = String::from_utf8_lossy(&o.stdout);
    assert!(
        o.status.success(),
        "repro chaos failed:\n{stdout}\n{}",
        String::from_utf8_lossy(&o.stderr)
    );
    assert!(stdout.contains("[chaos] PASS"), "no PASS verdict: {stdout}");
    let _ = std::fs::remove_dir_all(&out);
}
