//! Offline vendored stand-in for `serde_derive`.
//!
//! The sibling vendored `serde` defines `Serialize`/`Deserialize` as
//! marker traits; these derives emit the corresponding marker impls.
//! No syn/quote: the input item is parsed with a tiny hand-rolled
//! scanner sufficient for the plain structs and enums this workspace
//! annotates (no generic parameters).

use proc_macro::{TokenStream, TokenTree};

/// Extract the name of the struct/enum a derive was applied to.
/// Panics (a compile error) on generic items, which the offline stub
/// does not support.
fn item_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter().peekable();
    while let Some(tt) = tokens.next() {
        match tt {
            // Skip attributes: `#` followed by a bracketed group.
            TokenTree::Punct(p) if p.as_char() == '#' => {
                let _ = tokens.next();
            }
            TokenTree::Ident(id) => {
                let word = id.to_string();
                if word == "struct" || word == "enum" || word == "union" {
                    let name = match tokens.next() {
                        Some(TokenTree::Ident(name)) => name.to_string(),
                        other => panic!("serde_derive stub: expected item name, got {other:?}"),
                    };
                    if let Some(TokenTree::Punct(p)) = tokens.peek() {
                        if p.as_char() == '<' {
                            panic!(
                                "serde_derive offline stub: generic item `{name}` unsupported; \
                                 write the impl by hand"
                            );
                        }
                    }
                    return name;
                }
                // `pub`, `pub(crate)`, doc attrs already handled; keep scanning.
            }
            _ => {}
        }
    }
    panic!("serde_derive stub: no struct/enum found in derive input");
}

/// Derive the `serde::Serialize` marker impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = item_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("generated impl must parse")
}

/// Derive the `serde::Deserialize` marker impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = item_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("generated impl must parse")
}
