//! Offline vendored stand-in for the `rand` crate.
//!
//! The workspace builds hermetically (no network, no crates.io); this
//! crate provides the *subset* of the `rand 0.8` API the workspace
//! actually uses, with a deterministic xoshiro256++ generator behind
//! [`rngs::StdRng`]. Stream values differ from upstream `rand`'s
//! ChaCha12-based `StdRng`, but every consumer in this repository
//! treats the generator as an opaque seeded source, so only
//! *self-consistency* matters: the same seed always yields the same
//! stream, across runs, platforms, and thread counts.
//!
//! Supported surface: `SeedableRng::seed_from_u64`, `RngCore`,
//! `Rng::{gen_range, gen_bool}` over integer and float ranges, and
//! `seq::SliceRandom::{shuffle, choose}`.

#![forbid(unsafe_code)]

use std::ops::Range;

/// The core of a random number generator: a source of `u64` words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;

    /// Build a generator from OS entropy. Offline stub: derives the
    /// seed from the system clock — do not use where reproducibility
    /// matters (nothing in this workspace does).
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e3779b97f4a7c15);
        Self::seed_from_u64(nanos)
    }
}

/// A half-open or inclusive range that [`Rng::gen_range`] can sample.
pub trait SampleRange<T> {
    /// Draw a uniform sample from the range.
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Modulo draw; bias is negligible for the spans used
                // here (all far below 2^32) and determinism is what
                // matters.
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
        self.start + unit * (self.end - self.start)
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of [0, 1]");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard seeded generator: xoshiro256++ with SplitMix64
    /// seed expansion. (Upstream `rand` uses ChaCha12; see the crate
    /// docs for why the difference is immaterial here.)
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, per the xoshiro authors' guidance.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Slice sampling helpers.
pub mod seq {
    use super::RngCore;

    /// Shuffling and choosing over slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
        let mut c = StdRng::seed_from_u64(43);
        let a_draws: Vec<u64> = (0..16).map(|_| a.gen_range(0..u64::MAX)).collect();
        let c_draws: Vec<u64> = (0..16).map(|_| c.gen_range(0..u64::MAX)).collect();
        assert_ne!(a_draws, c_draws);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(10..20usize);
            assert!((10..20).contains(&x));
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely to be identity");
    }
}
