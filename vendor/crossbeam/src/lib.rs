//! Offline vendored stand-in for `crossbeam`.
//!
//! Provides the `crossbeam::thread::scope` API this workspace uses,
//! implemented over `std::thread::scope` (stable since Rust 1.63).
//! Semantics match what the callers rely on: scoped spawns may borrow
//! from the enclosing stack, `join` surfaces a child panic as `Err`,
//! and the scope joins every spawned thread before returning.

#![forbid(unsafe_code)]

/// Scoped threads.
pub mod thread {
    use std::any::Any;

    /// A scope handle; passed to [`scope`]'s closure and to every
    /// spawned thread's closure (enabling nested spawns).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread; `Err` carries the panic payload.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. The closure receives the scope
        /// again, mirroring crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Run `f` with a scope whose spawned threads may borrow local
    /// state; all threads are joined before this returns. Panics from
    /// threads joined inside `f` surface through their `join`; this
    /// wrapper itself reports success.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = thread::scope(|s| {
            let handles: Vec<_> = data
                .iter()
                .map(|&x| s.spawn(move |_| x * 10))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 100);
    }

    #[test]
    fn child_panic_surfaces_in_join() {
        let r = thread::scope(|s| {
            let h = s.spawn(|_| -> u32 { panic!("boom") });
            h.join()
        })
        .unwrap();
        assert!(r.is_err());
    }
}
