//! The [`Strategy`] trait and the built-in strategies.

use std::marker::PhantomData;
use std::ops::Range;

/// The deterministic generator driving sampled inputs (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// Seed from a test name so each property has a stable stream.
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xcbf29ce484222325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng(h)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "cannot sample an empty range");
        (self.next_u64() % bound as u64) as usize
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Something that can generate values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { base: self, f }
    }

    /// Generate a value, then generate from the strategy `f` builds
    /// from it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.base.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.sample(rng)).sample(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128 - self.start as u128) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Types with a canonical "arbitrary value" strategy.
pub trait Arbitrary: Sized {
    /// The strategy [`any`] returns.
    type Strategy: Strategy<Value = Self>;

    /// The canonical strategy for this type.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy for a whole primitive type's value space.
pub struct Any<T>(PhantomData<T>);

impl Strategy for Any<bool> {
    type Value = bool;

    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = Any<bool>;

    fn arbitrary() -> Any<bool> {
        Any(PhantomData)
    }
}

macro_rules! any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }

        impl Arbitrary for $t {
            type Strategy = Any<$t>;

            fn arbitrary() -> Any<$t> {
                Any(PhantomData)
            }
        }
    )*};
}

any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The canonical strategy for `T` (e.g. `any::<bool>()`).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_tuples_sample_in_bounds() {
        let mut rng = TestRng::from_name("bounds");
        let s = (3usize..9, 0u32..4, 0.0f64..1.0);
        for _ in 0..1000 {
            let (a, b, c) = s.sample(&mut rng);
            assert!((3..9).contains(&a));
            assert!(b < 4);
            assert!((0.0..1.0).contains(&c));
        }
    }

    #[test]
    fn flat_map_feeds_dependent_strategy() {
        let mut rng = TestRng::from_name("flat");
        let s = (1usize..5).prop_flat_map(|n| {
            (Just(n), crate::collection::vec(0u32..n as u32, n))
        });
        for _ in 0..200 {
            let (n, v) = s.sample(&mut rng);
            assert_eq!(v.len(), n);
            assert!(v.iter().all(|&x| (x as usize) < n));
        }
    }

    #[test]
    fn same_name_same_stream() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
