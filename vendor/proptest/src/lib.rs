//! Offline vendored stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's
//! property tests use: the [`Strategy`] trait with `prop_map` /
//! `prop_flat_map`, range and tuple strategies, [`strategy::Just`],
//! `any::<bool>()`, [`collection::vec`], the `proptest!` macro, and
//! the `prop_assert*` macros. Cases are generated from a seed derived
//! from the test name, so failures reproduce deterministically.
//!
//! Deliberately omitted relative to real proptest: shrinking,
//! persistence files, and `Arbitrary` beyond `bool`. A failing case
//! therefore reports the assertion at full input size rather than a
//! minimized one.

#![forbid(unsafe_code)]

pub mod strategy;

/// Collection strategies (`vec`).
pub mod collection {
    use crate::strategy::{Strategy, TestRng};
    use std::ops::Range;

    /// A size specification: an exact length or a half-open range.
    pub struct SizeRange(pub Range<usize>);

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange(n..n + 1)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange(r)
        }
    }

    /// Strategy producing `Vec`s of `element` samples.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A vector of values from `element`, with length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into().0,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.start + 1 >= self.size.end {
                self.size.start
            } else {
                rng.below(self.size.end - self.size.start) + self.size.start
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Test-runner configuration.
pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

/// The glob-import surface, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert inside a property; failure fails the case with context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Define property tests: each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` running `body` over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        #[test]
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::strategy::TestRng::from_name(stringify!($name));
            for case in 0..config.cases {
                $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut rng);)*
                let _ = case;
                $body
            }
        }
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr)) => {};
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}
