//! Offline vendored stand-in for `criterion`.
//!
//! Provides the API surface the workspace's benches use —
//! `criterion_group!` / `criterion_main!`, `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, and `Bencher::iter` — with a plain wall-clock
//! timer instead of criterion's statistical machinery. Each
//! benchmark prints `name  time/iter` over a fixed number of timed
//! iterations; no warm-up modeling, outlier analysis, or reports.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a value (re-export of the
/// std hint, which is what upstream criterion uses internally too).
pub use std::hint::black_box;

/// Identifier for one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Passed to the measured closure; drives timed iterations.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` calls of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed call to populate caches/lazy state.
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one(label: &str, iters: u64, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.as_nanos() / u128::from(b.iters.max(1));
    println!("bench: {label:<50} {per_iter:>12} ns/iter ({} iters)", b.iters);
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: u64,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set the iteration count used for each benchmark in the group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n as u64;
        self
    }

    /// Lower the measurement budget (accepted for API compatibility).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().0);
        run_one(&label, self.samples, &mut f);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        run_one(&label, self.samples, &mut |b| f(b, input));
        self
    }

    /// End the group (no-op beyond API compatibility).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 20,
            _parent: self,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, 20, &mut f);
        self
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
