//! Offline vendored stand-in for `serde`.
//!
//! This workspace builds with no network access, so the real serde
//! cannot be fetched. Existing code derives `Serialize`/`Deserialize`
//! as forward-looking annotations but never drives a serde
//! serializer; the checkpoint subsystem uses its own bit-exact codec
//! (`sbgp_core::checkpoint::codec`) precisely so that persistence
//! does not depend on an unavailable dependency. This stub keeps the
//! trait names and derive machinery compiling so the annotations (and
//! any future swap to real serde) stay in place.

#![forbid(unsafe_code)]

/// Marker for serializable types. No data-model methods in the
/// offline stub — see the crate docs.
pub trait Serialize {}

/// Marker for deserializable types. No data-model methods in the
/// offline stub — see the crate docs.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

macro_rules! impl_primitives {
    ($($t:ty),*) => {$(
        impl Serialize for $t {}
        impl<'de> Deserialize<'de> for $t {}
    )*};
}

impl_primitives!(
    bool, u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64, char, String
);

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<T: Serialize + ?Sized> Serialize for &T {}
impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {}
